//! Exit-code contract of `tdals lint`: success on every generated
//! benchmark, failure on one seeded fixture per structural defect
//! class, and machine-readable JSON findings.

use std::process::Command;

use tdals_bench::json::Json;

fn tdals() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdals"))
}

/// Runs `tdals lint` on inline Verilog via a temp file; returns
/// (status-success, stderr, stdout).
fn lint_source(tag: &str, source: &str, extra: &[&str]) -> (bool, String, String) {
    let dir = std::env::temp_dir().join(format!("tdals-lint-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("fixture.v");
    std::fs::write(&path, source).expect("write fixture");
    let out = tdals()
        .args(["lint", "--input", path.to_str().expect("utf8 path")])
        .args(extra)
        .output()
        .expect("run tdals lint");
    std::fs::remove_dir_all(&dir).ok();
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn every_generated_benchmark_lints_clean() {
    for bench in tdals::circuits::ALL_BENCHMARKS {
        let out = tdals()
            .args([
                "lint",
                "--input",
                &format!("bench:{}", bench.name()),
                "--deny",
                "warnings",
            ])
            .output()
            .expect("run tdals lint");
        assert!(
            out.status.success(),
            "{} should lint clean:\n{}",
            bench.name(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("0 error(s), 0 warning(s)"),
            "{}: expected zero findings, got:\n{stderr}",
            bench.name()
        );
    }
}

#[test]
fn cycle_fixture_fails_with_located_finding() {
    let src = "module looped (a, y);\n\
               input a;\n output y;\n wire n1, n2;\n\
               AND2X1 u1 ( .Y(n1), .A(a), .B(n2) );\n\
               INVX1 u2 ( .Y(n2), .A(n1) );\n\
               assign y = n2;\n\
               endmodule\n";
    let (ok, stderr, _) = lint_source("cycle", src, &[]);
    assert!(!ok, "combinational loop must fail lint");
    assert!(stderr.contains("error[cycle]"), "stderr:\n{stderr}");
}

#[test]
fn undriven_net_fixture_fails() {
    let src = "module un (a, y);\n input a;\n output y;\n wire n1, ghost;\n\
               AND2X1 u1 ( .Y(n1), .A(a), .B(ghost) );\n assign y = n1;\n endmodule\n";
    let (ok, stderr, _) = lint_source("undriven", src, &[]);
    assert!(!ok, "undriven net must fail lint");
    assert!(stderr.contains("error[undriven-net]"), "stderr:\n{stderr}");
}

#[test]
fn multi_driven_net_fixture_fails() {
    let src = "module md (a, y);\n input a;\n output y;\n wire n1;\n\
               INVX1 u1 ( .Y(n1), .A(a) );\n\
               BUFX1 u2 ( .Y(n1), .A(a) );\n\
               assign y = n1;\n endmodule\n";
    let (ok, stderr, _) = lint_source("multi", src, &[]);
    assert!(!ok, "multiply-driven net must fail lint");
    assert!(
        stderr.contains("error[multi-driven-net]"),
        "stderr:\n{stderr}"
    );
}

#[test]
fn dangling_and_unreachable_fixture_fails_only_under_deny_warnings() {
    // u2 reads u1 but feeds nothing: u2 is a dangling wire, u1 an
    // unreachable gate (it has a reader, but no path to a PO). Both are
    // representable intermediate states — warnings, not errors.
    let src = "module dang (a, y);\n input a;\n output y;\n wire n1, n2, n3;\n\
               INVX1 u1 ( .Y(n1), .A(a) );\n\
               INVX1 u2 ( .Y(n2), .A(n1) );\n\
               BUFX1 u3 ( .Y(n3), .A(a) );\n\
               assign y = n3;\n endmodule\n";
    let (ok, stderr, _) = lint_source("dangling-ok", src, &[]);
    assert!(ok, "warnings alone must not fail lint:\n{stderr}");
    assert!(
        stderr.contains("warning[dangling-wire]"),
        "stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("warning[unreachable-gate]"),
        "stderr:\n{stderr}"
    );

    let (ok, stderr, _) = lint_source("dangling-deny", src, &["--deny", "warnings"]);
    assert!(!ok, "--deny warnings must fail on warnings:\n{stderr}");
}

#[test]
fn json_output_carries_rule_and_location() {
    let src = "module un (a, y);\n input a;\n output y;\n wire n1, ghost;\n\
               AND2X1 u1 ( .Y(n1), .A(a), .B(ghost) );\n assign y = n1;\n endmodule\n";
    let (ok, _, stdout) = lint_source("json", src, &["--json"]);
    assert!(!ok);
    let doc = Json::parse(&stdout).expect("valid JSON findings document");
    assert_eq!(
        doc.get("errors").and_then(Json::as_f64),
        Some(1.0),
        "doc: {doc}"
    );
    let findings = doc
        .get("findings")
        .and_then(Json::as_array)
        .expect("findings array");
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("rule").and_then(Json::as_str),
        Some("undriven-net")
    );
    assert!(
        findings[0]
            .get("line")
            .and_then(Json::as_f64)
            .is_some_and(|l| l >= 1.0),
        "parse findings carry source lines: {}",
        findings[0]
    );
}

#[test]
fn unreadable_input_is_a_run_error() {
    let out = tdals()
        .args(["lint", "--input", "/nonexistent/void.v"])
        .output()
        .expect("run tdals lint");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: reading"), "stderr:\n{stderr}");
    // A run error never reprints the usage block.
    assert!(!stderr.contains("usage:"), "stderr:\n{stderr}");
}

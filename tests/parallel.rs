//! Parallel-vs-sequential equivalence harness.
//!
//! The deterministic worker pool (`tdals::core::par`) promises that a
//! flow returns a **bit-identical** [`FlowOutcome`] for every thread
//! count — same best fitness, same measured error, same gate-for-gate
//! netlist, same evaluation count, same event sequence. This suite
//! holds every method to that promise across thread counts {1, 2, 8}
//! (`TDALS_THREADS=N` narrows the comparison set to {N}, which the CI
//! matrix job uses to give each leg one distinct width), pinned seeds,
//! and randomized proptest seeds, with and without deterministic
//! budgets.
//!
//! The digest compares the *entire observable surface* of a run: the
//! outcome's numbers, the final netlists, the per-iteration history,
//! and the full event stream with the only wall-clock field
//! (`FlowFinished::runtime_s`) stripped.

use std::cell::RefCell;

use proptest::prelude::*;
use tdals::baselines::{Method, MethodConfig, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::api::{Budget, Flow, FlowEvent, StopReason};
use tdals::core::{EvalContext, IterationStats};
use tdals::netlist::Netlist;
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::TimingConfig;

fn quick_ctx() -> EvalContext {
    let accurate = Benchmark::Int2float.build();
    EvalContext::new(
        &accurate,
        Patterns::random(accurate.input_count(), 512, 7),
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    )
}

fn quick_cfg(seed: u64, threads: usize) -> MethodConfig {
    MethodConfig::default()
        .with_population(6)
        .with_iterations(3)
        .with_seed(seed)
        .with_threads(threads)
}

/// Thread counts under test: the pinned {1, 2, 8} set, plus whatever
/// width the CI matrix passes via `TDALS_THREADS`.
///
/// Each run is always compared against a fresh sequential baseline.
/// Without `TDALS_THREADS` the comparison widths are {1, 2, 8} — width
/// 1 makes the harness prove *run-to-run* determinism (two sequential
/// runs, equal digests), not just cross-width equivalence. With
/// `TDALS_THREADS=N` the comparison set is exactly {N}, so each CI
/// matrix leg proves one distinct claim (the `1` leg: sequential
/// reproducibility on that runner; the `4` leg: 4-worker equivalence)
/// instead of re-running a subset of another leg's work.
fn comparison_widths() -> Vec<usize> {
    match std::env::var("TDALS_THREADS")
        .ok()
        .and_then(|raw| raw.parse::<usize>().ok())
    {
        Some(n) if n > 0 => vec![n],
        _ => vec![1, 2, 8],
    }
}

/// A comparable fingerprint of one event; `{:?}` on `f64` prints the
/// shortest round-trip representation, so two keys compare equal iff
/// the underlying values are bit-identical (modulo `-0.0`, which none
/// of these quantities produce).
fn event_key(ev: &FlowEvent) -> String {
    match ev {
        FlowEvent::FlowStarted {
            optimizer,
            gates,
            cpd_ori,
            area_ori,
            metric,
            error_bound,
        } => {
            format!("start {optimizer} {gates} {cpd_ori:?} {area_ori:?} {metric:?} {error_bound:?}")
        }
        FlowEvent::IterationStarted {
            iteration,
            constraint,
        } => format!("iter-start {iteration} {constraint:?}"),
        FlowEvent::BestImproved {
            iteration,
            fitness,
            error,
            depth,
            area,
        } => format!("best {iteration} {fitness:?} {error:?} {depth} {area:?}"),
        FlowEvent::LacAccepted {
            iteration,
            error,
            area,
        } => format!("lac {iteration} {error:?} {area:?}"),
        FlowEvent::IterationFinished { stats } => format!("iter-done {stats:?}"),
        FlowEvent::OptimizeFinished { stop, evaluations } => {
            format!("opt-done {stop:?} {evaluations}")
        }
        FlowEvent::PostOptStarted { area_con } => format!("post-start {area_con:?}"),
        FlowEvent::PostOptFinished { report } => format!("post-done {report:?}"),
        // runtime_s is the one wall-clock field in the stream: strip it.
        FlowEvent::FlowFinished {
            ratio_cpd, error, ..
        } => format!("done {ratio_cpd:?} {error:?}"),
        other => format!("other {other:?}"),
    }
}

/// Everything observable about one run that must not depend on the
/// thread count.
#[derive(Debug, PartialEq)]
struct RunDigest {
    method: String,
    final_netlist: Netlist,
    best_netlist: Netlist,
    best_fitness: f64,
    error: f64,
    area: f64,
    ratio_cpd: f64,
    gate_count: usize,
    evaluations: u64,
    stop: StopReason,
    history: Vec<IterationStats>,
    events: Vec<String>,
}

fn run_digest(
    ctx: &EvalContext,
    method: Method,
    seed: u64,
    threads: usize,
    budget: Budget,
) -> RunDigest {
    let events: RefCell<Vec<String>> = RefCell::new(Vec::new());
    let outcome = Flow::for_context(ctx)
        .error_bound(0.05)
        .budget(budget)
        .optimizer(method.optimizer(&quick_cfg(seed, threads)))
        .observe(|ev: &FlowEvent| events.borrow_mut().push(event_key(ev)))
        .run()
        .expect("valid session");
    RunDigest {
        method: outcome.method.clone(),
        gate_count: outcome.netlist.logic_gate_count(),
        best_fitness: outcome.optimize.best.fitness,
        best_netlist: outcome.optimize.best.netlist.clone(),
        error: outcome.error,
        area: outcome.area,
        ratio_cpd: outcome.ratio_cpd,
        evaluations: outcome.optimize.evaluations,
        stop: outcome.stop(),
        history: outcome.optimize.history.clone(),
        final_netlist: outcome.netlist,
        events: events.into_inner(),
    }
}

#[test]
fn all_five_methods_are_bit_identical_across_thread_counts() {
    let ctx = quick_ctx();
    for method in ALL_METHODS {
        let sequential = run_digest(&ctx, method, 11, 1, Budget::unlimited());
        assert_eq!(sequential.stop, StopReason::Completed, "{method}");
        for threads in comparison_widths() {
            let parallel = run_digest(&ctx, method, 11, threads, Budget::unlimited());
            assert_eq!(
                sequential, parallel,
                "{method}: {threads} worker(s) diverged from the sequential baseline"
            );
        }
    }
}

#[test]
fn auto_thread_count_matches_sequential() {
    // `threads == 0` resolves to the host's available parallelism —
    // whatever that is, the outcome must not change.
    let ctx = quick_ctx();
    for method in [Method::Dcgwo, Method::Hedals] {
        let sequential = run_digest(&ctx, method, 23, 1, Budget::unlimited());
        let auto = run_digest(&ctx, method, 23, 0, Budget::unlimited());
        assert_eq!(sequential, auto, "{method}: auto width diverged");
    }
}

#[test]
fn deterministic_budgets_stop_identically_at_any_width() {
    // Evaluation and iteration caps are enforced in each loop's serial
    // reduction, per candidate in index order — never at thread-count-
    // dependent batch boundaries — so a budgeted run stops at the very
    // same candidate for every width.
    let ctx = quick_ctx();
    for method in ALL_METHODS {
        for budget in [
            Budget::unlimited().with_max_evaluations(10),
            Budget::unlimited().with_max_iterations(1),
        ] {
            let sequential = run_digest(&ctx, method, 5, 1, budget.clone());
            let parallel = run_digest(&ctx, method, 5, 8, budget);
            assert_eq!(
                sequential, parallel,
                "{method}: budgeted run diverged at 8 workers"
            );
        }
    }
}

#[test]
fn flow_threads_knob_matches_config_knob() {
    // `Flow::threads(n)` reaches the optimizer through
    // `Optimizer::set_threads`, and lands on the same code path as
    // configuring the method directly.
    let ctx = quick_ctx();
    let via_config = run_digest(&ctx, Method::Dcgwo, 31, 8, Budget::unlimited());
    let events: RefCell<Vec<String>> = RefCell::new(Vec::new());
    let outcome = Flow::for_context(&ctx)
        .error_bound(0.05)
        .optimizer(Method::Dcgwo.optimizer(&quick_cfg(31, 1)))
        .threads(8)
        .observe(|ev: &FlowEvent| events.borrow_mut().push(event_key(ev)))
        .run()
        .expect("valid session");
    assert_eq!(outcome.netlist, via_config.final_netlist);
    assert_eq!(outcome.optimize.evaluations, via_config.evaluations);
    assert_eq!(events.into_inner(), via_config.events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized corner of the acceptance criterion: any method, any
    /// seed, 1 worker vs 4 workers — the digests are equal.
    #[test]
    fn equivalence_holds_for_random_seeds(seed in 0u64..1000, method_idx in 0usize..5) {
        let ctx = quick_ctx();
        let method = ALL_METHODS[method_idx];
        let sequential = run_digest(&ctx, method, seed, 1, Budget::unlimited());
        let parallel = run_digest(&ctx, method, seed, 4, Budget::unlimited());
        prop_assert_eq!(sequential, parallel);
    }
}

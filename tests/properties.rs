//! Property-based tests (proptest) over the core invariants of the
//! workspace: netlist structure under random LAC sequences, Verilog
//! round-trips, dangling-sweep function preservation, error-metric
//! bounds, STA monotonicity, sizing legality, and Pareto-front
//! consistency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdals::circuits::random_logic::{grow, RandomLogicSpec};
use tdals::core::pareto::{crowding_distance, non_dominated_sort, select, Objectives};
use tdals::core::{random_lac, EvalContext};
use tdals::netlist::builder::Builder;
use tdals::netlist::{verilog, Netlist, SignalRef};
use tdals::sim::{error_rate, nmed, simulate, ErrorMetric, Patterns};
use tdals::sta::{analyze, size_for_timing, SizingConfig, TimingConfig};

/// Deterministic random netlist from a seed: a handful of inputs plus a
/// seeded random-logic cone.
fn random_netlist(seed: u64, inputs: usize, gates: usize, outputs: usize) -> Netlist {
    let mut b = Builder::new(format!("rand{seed}"));
    let ins = b.inputs("x", inputs);
    let mut spec = RandomLogicSpec::new(gates, outputs, seed);
    spec.window = 12;
    let outs = grow(&mut b, &ins, &spec);
    b.outputs("y", &outs);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_netlists_satisfy_invariants(seed in 0u64..500) {
        let n = random_netlist(seed, 5, 40, 4);
        prop_assert!(n.check_invariants().is_ok());
    }

    #[test]
    fn verilog_round_trip_preserves_structure(seed in 0u64..200) {
        let n = random_netlist(seed, 4, 30, 3);
        let text = verilog::to_verilog(&n);
        let again = verilog::parse(&text).expect("reparse");
        prop_assert_eq!(again.logic_gate_count(), n.logic_gate_count());
        prop_assert_eq!(again.input_count(), n.input_count());
        prop_assert_eq!(again.output_count(), n.output_count());
        // Function equivalence on shared stimulus.
        let p = Patterns::random(n.input_count(), 256, seed);
        let a = simulate(&n, &p);
        let b = simulate(&again, &p);
        for po in 0..n.output_count() {
            for w in 0..p.word_count() {
                prop_assert_eq!(a.po_word(po, w), b.po_word(po, w));
            }
        }
    }

    #[test]
    fn lac_sequences_never_create_cycles(seed in 0u64..200, lacs in 1usize..8) {
        let mut n = random_netlist(seed, 5, 40, 4);
        let p = Patterns::random(5, 128, seed ^ 0xABCD);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..lacs {
            let sim = simulate(&n, &p);
            if let Some(lac) = random_lac(&n, &sim, 16, &mut rng) {
                lac.apply(&mut n).expect("legal LAC");
            }
        }
        prop_assert!(n.check_invariants().is_ok());
    }

    #[test]
    fn dangling_sweep_preserves_every_output(seed in 0u64..200) {
        let mut n = random_netlist(seed, 5, 40, 4);
        let p = Patterns::random(5, 256, seed ^ 0x55);
        // Inject a couple of LACs so there is something to sweep.
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let sim = simulate(&n, &p);
            if let Some(lac) = random_lac(&n, &sim, 16, &mut rng) {
                lac.apply(&mut n).expect("legal LAC");
            }
        }
        let before = simulate(&n, &p);
        let removed = n.sweep_dangling();
        let after = simulate(&n, &p);
        prop_assert!(n.check_invariants().is_ok());
        for po in 0..n.output_count() {
            for w in 0..p.word_count() {
                prop_assert_eq!(before.po_word(po, w), after.po_word(po, w));
            }
        }
        // Sweeping twice is idempotent.
        prop_assert_eq!(n.sweep_dangling(), 0);
        let _ = removed;
    }

    #[test]
    fn error_metrics_are_bounded_and_zero_on_self(seed in 0u64..200) {
        let n = random_netlist(seed, 5, 30, 4);
        let p = Patterns::random(5, 256, seed);
        let golden = simulate(&n, &p);
        prop_assert_eq!(error_rate(&golden, &golden), 0.0);
        prop_assert_eq!(nmed(&golden, &golden), 0.0);

        let mut approx = n.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        if let Some(lac) = random_lac(&approx, &golden, 16, &mut rng) {
            lac.apply(&mut approx).expect("legal LAC");
        }
        let app = simulate(&approx, &p);
        let er = error_rate(&golden, &app);
        let m = nmed(&golden, &app);
        prop_assert!((0.0..=1.0).contains(&er), "er {}", er);
        prop_assert!((0.0..=1.0).contains(&m), "nmed {}", m);
        // ER bounds the per-PO flip rate from above.
        for f in tdals::sim::po_flip_rates(&golden, &app) {
            prop_assert!(f <= er + 1e-12);
        }
    }

    #[test]
    fn arrival_times_increase_along_paths(seed in 0u64..200) {
        let n = random_netlist(seed, 5, 40, 4);
        let report = analyze(&n, &TimingConfig::default());
        for (id, gate) in n.iter() {
            for fanin in gate.fanins() {
                if let SignalRef::Gate(src) = fanin {
                    prop_assert!(report.arrival(*src) < report.arrival(id));
                }
            }
        }
    }

    #[test]
    fn sizing_respects_budget_and_function(seed in 0u64..100) {
        let mut n = random_netlist(seed, 5, 30, 4);
        let p = Patterns::random(5, 128, seed);
        let before = simulate(&n, &p);
        let budget = n.area_live() * 1.4;
        let cfg = TimingConfig::default();
        let result = size_for_timing(&mut n, &cfg, budget, &SizingConfig::default());
        prop_assert!(result.area_after <= budget + 1e-9);
        prop_assert!(result.cpd_after <= result.cpd_before + 1e-9);
        let after = simulate(&n, &p);
        for po in 0..n.output_count() {
            for w in 0..p.word_count() {
                prop_assert_eq!(before.po_word(po, w), after.po_word(po, w));
            }
        }
    }

    #[test]
    fn pareto_fronts_partition_and_do_not_dominate(
        coords in prop::collection::vec((0.5f64..3.0, 0.5f64..3.0), 1..40)
    ) {
        let pts: Vec<Objectives> = coords
            .iter()
            .map(|&(fd, fa)| Objectives::new(fd, fa))
            .collect();
        let fronts = non_dominated_sort(&pts);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, pts.len());
        for front in &fronts {
            for (k, &i) in front.iter().enumerate() {
                for &j in &front[k + 1..] {
                    prop_assert!(!pts[i].dominates(pts[j]));
                    prop_assert!(!pts[j].dominates(pts[i]));
                }
            }
            // Crowding distances are non-negative.
            for d in crowding_distance(&pts, front) {
                prop_assert!(d >= 0.0);
            }
        }
        // Selection returns distinct indices of the requested size.
        let want = (pts.len() / 2).max(1);
        let mut sel = select(&pts, want);
        let len = sel.len();
        prop_assert_eq!(len, want.min(pts.len()));
        sel.sort_unstable();
        sel.dedup();
        prop_assert_eq!(sel.len(), len);
    }

    #[test]
    fn incremental_sta_tracks_lac_sequences(seed in 0u64..60, lacs in 1usize..6) {
        use tdals::sta::IncrementalSta;
        let mut n = random_netlist(seed, 5, 35, 4);
        let cfg = TimingConfig::default();
        let mut engine = IncrementalSta::new(&n, cfg);
        let p = Patterns::random(5, 128, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11);
        for _ in 0..lacs {
            let sim = simulate(&n, &p);
            if let Some(lac) = random_lac(&n, &sim, 16, &mut rng) {
                engine
                    .substitute(&mut n, lac.target(), lac.switch())
                    .expect("legal LAC");
            }
        }
        let full = analyze(&n, &cfg);
        for (id, _) in n.iter() {
            prop_assert!((engine.arrival(id) - full.arrival(id)).abs() < 1e-9);
            prop_assert_eq!(engine.depth(id), full.depth(id));
        }
        prop_assert!(
            (engine.critical_path_delay(&n) - full.critical_path_delay()).abs() < 1e-9
        );
    }

    #[test]
    fn error_metric_relationships(seed in 0u64..60) {
        use tdals::sim::{bit_flip_rate, med, worst_case_error_distance};
        let n = random_netlist(seed, 5, 30, 5);
        let p = Patterns::random(5, 256, seed);
        let golden = simulate(&n, &p);
        let mut approx = n.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x33);
        for _ in 0..2 {
            let sim = simulate(&approx, &p);
            if let Some(lac) = random_lac(&approx, &sim, 16, &mut rng) {
                lac.apply(&mut approx).expect("legal LAC");
            }
        }
        let app = simulate(&approx, &p);
        let er = error_rate(&golden, &app);
        let bfr = bit_flip_rate(&golden, &app);
        let m = med(&golden, &app);
        let wc = worst_case_error_distance(&golden, &app);
        // Bit-flip rate never exceeds ER (a wrong vector flips >= 1 bit,
        // a right vector flips none).
        prop_assert!(bfr <= er + 1e-12, "bfr {} er {}", bfr, er);
        // Worst case bounds the mean; both are zero iff ER is zero.
        prop_assert!(wc + 1e-12 >= m);
        prop_assert_eq!(wc == 0.0, er == 0.0);
        // NMED is MED normalized by the max output value.
        let n_out = n.output_count();
        let max_value = (2f64).powi(n_out as i32) - 1.0;
        prop_assert!((nmed(&golden, &app) - m / max_value).abs() < 1e-9);
    }

    #[test]
    fn delta_eval_refcounts_survive_commit_sequences(seed in 0u64..60, lacs in 1usize..6) {
        let n = random_netlist(seed, 5, 35, 4);
        let ctx = EvalContext::new(
            &n,
            Patterns::random(5, 128, seed),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.8,
        );
        // A tiny re-base period so the sequence also exercises the
        // simulator's full-resimulation path between commits.
        let mut base = ctx.delta_eval(n).with_full_resim_every(2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        for _ in 0..lacs {
            let Some(lac) = random_lac(base.netlist(), base.sim(), 16, &mut rng) else {
                break;
            };
            let (target, switch) = (lac.target(), lac.switch());
            // Previews must not disturb the base state.
            let _ = ctx.score_lac(&base, lac);
            let switch_live = match switch {
                SignalRef::Gate(sw) => base.live()[sw.index()],
                _ => true,
            };
            let predicted = base.area_after(target, switch);
            base.commit(target, switch).expect("legal LAC");
            // The dead-cone preview models shrinking cones only; a dead
            // switch resurrects its cone, which previews cannot see.
            if switch_live {
                prop_assert!(
                    (predicted - base.area_live()).abs() < 1e-9,
                    "previewed area {} vs committed {}",
                    predicted,
                    base.area_live()
                );
            }
            // The incrementally-maintained counts must match a
            // from-scratch reachability recount after every commit.
            let report = tdals::lint::refcount_consistency(
                base.netlist(),
                base.live(),
                base.live_refs(),
            );
            prop_assert!(report.is_clean(), "{}", report);
            let (live, refs) = tdals::lint::refcount_expected(base.netlist());
            prop_assert_eq!(base.live(), &live[..]);
            let _ = refs;
            // And the derived area must match a fresh evaluator's.
            let fresh = ctx.delta_eval(base.netlist().clone());
            prop_assert!((base.area_live() - fresh.area_live()).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluated_error_matches_direct_measurement(seed in 0u64..60) {
        let n = random_netlist(seed, 5, 25, 3);
        let ctx = EvalContext::new(
            &n,
            Patterns::random(5, 256, seed),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.8,
        );
        let mut approx = n.clone();
        let sim = ctx.simulate(&approx);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(lac) = random_lac(&approx, &sim, 16, &mut rng) {
            lac.apply(&mut approx).expect("legal LAC");
        }
        let cand = ctx.evaluate(approx.clone());
        prop_assert_eq!(cand.error, ctx.evaluator().error_of(&approx));
        prop_assert!(cand.fd >= 0.0 && cand.fa > 0.0);
    }
}

//! SIMD-width equivalence harness.
//!
//! The blockwise simulation kernels (`tdals::sim::SimdWidth`) promise
//! that a flow returns a **bit-identical** [`FlowOutcome`] at every
//! block width — same best fitness, same measured error, same
//! gate-for-gate netlist, same evaluation count, same event sequence —
//! and that the width knob composes with the thread-count knob. This
//! suite holds every method to that promise across the full
//! width × worker grid {1, 4, 8} × {1, 4}, with pinned seeds and
//! randomized proptest seeds, mirroring `tests/parallel.rs`.
//!
//! The digest compares the *entire observable surface* of a run: the
//! outcome's numbers, the final netlists, the per-iteration history,
//! and the full event stream with the only wall-clock field
//! (`FlowFinished::runtime_s`) stripped.

use std::cell::RefCell;

use proptest::prelude::*;
use tdals::baselines::{Method, MethodConfig, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::api::{Budget, Flow, FlowEvent, StopReason};
use tdals::core::{EvalContext, IterationStats};
use tdals::netlist::Netlist;
use tdals::sim::{ErrorMetric, Patterns, SimdWidth, ALL_WIDTHS};
use tdals::sta::TimingConfig;

fn quick_ctx(width: SimdWidth) -> EvalContext {
    let accurate = Benchmark::Int2float.build();
    EvalContext::new(
        &accurate,
        Patterns::random(accurate.input_count(), 512, 7),
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    )
    .with_simd_width(width)
}

fn quick_cfg(seed: u64, threads: usize) -> MethodConfig {
    MethodConfig::default()
        .with_population(6)
        .with_iterations(3)
        .with_seed(seed)
        .with_threads(threads)
}

/// A comparable fingerprint of one event; `{:?}` on `f64` prints the
/// shortest round-trip representation, so two keys compare equal iff
/// the underlying values are bit-identical (modulo `-0.0`, which none
/// of these quantities produce).
fn event_key(ev: &FlowEvent) -> String {
    match ev {
        FlowEvent::FlowStarted {
            optimizer,
            gates,
            cpd_ori,
            area_ori,
            metric,
            error_bound,
        } => {
            format!("start {optimizer} {gates} {cpd_ori:?} {area_ori:?} {metric:?} {error_bound:?}")
        }
        FlowEvent::IterationStarted {
            iteration,
            constraint,
        } => format!("iter-start {iteration} {constraint:?}"),
        FlowEvent::BestImproved {
            iteration,
            fitness,
            error,
            depth,
            area,
        } => format!("best {iteration} {fitness:?} {error:?} {depth} {area:?}"),
        FlowEvent::LacAccepted {
            iteration,
            error,
            area,
        } => format!("lac {iteration} {error:?} {area:?}"),
        FlowEvent::IterationFinished { stats } => format!("iter-done {stats:?}"),
        FlowEvent::OptimizeFinished { stop, evaluations } => {
            format!("opt-done {stop:?} {evaluations}")
        }
        FlowEvent::PostOptStarted { area_con } => format!("post-start {area_con:?}"),
        FlowEvent::PostOptFinished { report } => format!("post-done {report:?}"),
        // runtime_s is the one wall-clock field in the stream: strip it.
        FlowEvent::FlowFinished {
            ratio_cpd, error, ..
        } => format!("done {ratio_cpd:?} {error:?}"),
        other => format!("other {other:?}"),
    }
}

/// Everything observable about one run that must not depend on the
/// SIMD width (or the thread count it is crossed with).
#[derive(Debug, PartialEq)]
struct RunDigest {
    method: String,
    final_netlist: Netlist,
    best_netlist: Netlist,
    best_fitness: f64,
    error: f64,
    area: f64,
    ratio_cpd: f64,
    gate_count: usize,
    evaluations: u64,
    stop: StopReason,
    history: Vec<IterationStats>,
    events: Vec<String>,
}

fn run_digest(
    width: SimdWidth,
    method: Method,
    seed: u64,
    threads: usize,
    budget: Budget,
) -> RunDigest {
    let ctx = quick_ctx(width);
    let events: RefCell<Vec<String>> = RefCell::new(Vec::new());
    let outcome = Flow::for_context(&ctx)
        .error_bound(0.05)
        .budget(budget)
        .optimizer(method.optimizer(&quick_cfg(seed, threads)))
        .observe(|ev: &FlowEvent| events.borrow_mut().push(event_key(ev)))
        .run()
        .expect("valid session");
    RunDigest {
        method: outcome.method.clone(),
        gate_count: outcome.netlist.logic_gate_count(),
        best_fitness: outcome.optimize.best.fitness,
        best_netlist: outcome.optimize.best.netlist.clone(),
        error: outcome.error,
        area: outcome.area,
        ratio_cpd: outcome.ratio_cpd,
        evaluations: outcome.optimize.evaluations,
        stop: outcome.stop(),
        history: outcome.optimize.history.clone(),
        final_netlist: outcome.netlist,
        events: events.into_inner(),
    }
}

#[test]
fn all_five_methods_are_bit_identical_across_widths_and_threads() {
    for method in ALL_METHODS {
        let baseline = run_digest(SimdWidth::W1, method, 11, 1, Budget::unlimited());
        assert_eq!(baseline.stop, StopReason::Completed, "{method}");
        for width in ALL_WIDTHS {
            for threads in [1usize, 4] {
                if width == SimdWidth::W1 && threads == 1 {
                    continue;
                }
                let run = run_digest(width, method, 11, threads, Budget::unlimited());
                assert_eq!(
                    baseline, run,
                    "{method}: W{width} x {threads} worker(s) diverged from the \
                     scalar sequential baseline"
                );
            }
        }
    }
}

#[test]
fn flow_simd_width_knob_matches_context_knob() {
    // `Flow::simd_width` reaches `build_context` on source-based
    // sessions; it must land on the same code path as widening a
    // prebuilt `EvalContext` — and on the same bits as every other
    // width.
    let accurate = Benchmark::Int2float.build();
    let digest = |width: SimdWidth| {
        let events: RefCell<Vec<String>> = RefCell::new(Vec::new());
        let outcome = Flow::for_netlist(&accurate)
            .metric(ErrorMetric::ErrorRate)
            .vectors(512)
            .pattern_seed(7)
            .error_bound(0.05)
            .simd_width(width)
            .optimizer(Method::Dcgwo.optimizer(&quick_cfg(31, 1)))
            .observe(|ev: &FlowEvent| events.borrow_mut().push(event_key(ev)))
            .run()
            .expect("valid session");
        (
            outcome.netlist,
            outcome.optimize.evaluations,
            events.into_inner(),
        )
    };
    let scalar = digest(SimdWidth::W1);
    for width in [SimdWidth::W4, SimdWidth::W8] {
        assert_eq!(
            digest(width),
            scalar,
            "W{width} diverged via Flow::simd_width"
        );
    }

    // And the ctx route produces those same bits.
    let via_ctx = run_digest(SimdWidth::W8, Method::Dcgwo, 31, 1, Budget::unlimited());
    assert_eq!(via_ctx.final_netlist, scalar.0);
    assert_eq!(via_ctx.evaluations, scalar.1);
    assert_eq!(via_ctx.events, scalar.2);
}

#[test]
fn deterministic_budgets_stop_identically_at_any_width() {
    // Budget caps are enforced per candidate in index order, never at a
    // width-dependent boundary, so a budgeted run stops at the very
    // same candidate whether the kernels walk 1 word or 8 per trip.
    for method in ALL_METHODS {
        for budget in [
            Budget::unlimited().with_max_evaluations(10),
            Budget::unlimited().with_max_iterations(1),
        ] {
            let scalar = run_digest(SimdWidth::W1, method, 5, 1, budget.clone());
            let wide = run_digest(SimdWidth::W8, method, 5, 4, budget);
            assert_eq!(
                scalar, wide,
                "{method}: budgeted run diverged at W8 x 4 workers"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized corner of the acceptance criterion: any method, any
    /// seed, scalar sequential vs widest-kernel 4-worker — the digests
    /// are equal.
    #[test]
    fn equivalence_holds_for_random_seeds(seed in 0u64..1000, method_idx in 0usize..5) {
        let method = ALL_METHODS[method_idx];
        let scalar = run_digest(SimdWidth::W1, method, seed, 1, Budget::unlimited());
        let wide = run_digest(SimdWidth::W8, method, seed, 4, Budget::unlimited());
        prop_assert_eq!(scalar, wide);
    }
}

//! Incremental-simulation equivalence and determinism suite.
//!
//! The contract under test: scoring a candidate through the
//! incremental cone engines (`DeltaSim` preview/commit, incremental STA
//! preview, dead-cone area cascade) is indistinguishable from mutating
//! the netlist and re-running everything from scratch — bit-identical
//! for simulated words and error metrics, settle-tolerance-identical
//! for timing and area — and that the optimizer built on top stays
//! deterministic across thread counts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals::circuits::random_logic::{grow, RandomLogicSpec};
use tdals::core::{optimize, EvalContext, Lac, OptimizerConfig};
use tdals::netlist::builder::Builder;
use tdals::netlist::{GateId, Netlist, SignalRef};
use tdals::sim::{simulate, DeltaSim, ErrorMetric, Patterns, SimWords, SimdWidth, ALL_WIDTHS};
use tdals::sta::TimingConfig;

/// Deterministic random netlist from a seed.
fn random_netlist(seed: u64, inputs: usize, gates: usize, outputs: usize) -> Netlist {
    let mut b = Builder::new(format!("rand{seed}"));
    let ins = b.inputs("x", inputs);
    let mut spec = RandomLogicSpec::new(gates, outputs, seed);
    spec.window = 12;
    let outs = grow(&mut b, &ins, &spec);
    b.outputs("y", &outs);
    b.finish()
}

/// A random legal LAC: any logic gate as target, a TFI gate or a
/// constant as switch.
fn random_substitution(netlist: &Netlist, rng: &mut StdRng) -> (GateId, SignalRef) {
    let logic: Vec<GateId> = netlist
        .iter()
        .filter(|(_, g)| !g.is_input())
        .map(|(id, _)| id)
        .collect();
    let target = logic[rng.gen_range(0..logic.len())];
    let tfi = netlist.tfi_mask(target);
    let mut pool: Vec<SignalRef> = tfi
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| SignalRef::Gate(GateId::new(i)))
        .collect();
    pool.push(SignalRef::Const0);
    pool.push(SignalRef::Const1);
    (target, pool[rng.gen_range(0..pool.len())])
}

fn assert_words_match<V: SimWords, W: SimWords>(delta: &V, full: &W, context: &str) {
    assert_eq!(delta.vector_count(), full.vector_count(), "{context}");
    assert_eq!(delta.output_count(), full.output_count(), "{context}");
    for po in 0..full.output_count() {
        for w in 0..full.word_count() {
            assert_eq!(
                delta.po_word(po, w),
                full.po_word(po, w),
                "{context}: po {po} word {w}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Tentpole invariant: a previewed substitution is bit-identical to
    /// mutating the netlist and fully re-simulating it, on arbitrary
    /// random netlists and arbitrary single-gate substitutions —
    /// including unaligned tail words, at every SIMD block width.
    #[test]
    fn preview_is_bit_identical_to_full_resim(
        seed in 0u64..300,
        vectors in 65usize..300,
    ) {
        let n = random_netlist(seed, 6, 50, 5);
        let p = Patterns::random(n.input_count(), vectors, seed ^ 0x5eed);
        for width in ALL_WIDTHS {
            let delta = DeltaSim::new(n.clone(), &p).with_simd_width(width);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
            for _ in 0..4 {
                let (target, switch) = random_substitution(&n, &mut rng);
                let view = delta.preview(target, switch);
                let mut mutated = n.clone();
                mutated.substitute(target, switch).expect("legal LAC");
                let full = simulate(&mutated, &p);
                assert_words_match(&view, &full,
                    &format!("seed {seed}, W{width}, {target} := {switch}"));
            }
        }
    }

    /// Committed substitution chains (with and without periodic
    /// re-basing) track full re-simulation exactly — at every SIMD
    /// block width, since commit and the `full_resim_every_n` re-base
    /// run different kernels (cone overlay vs whole-netlist pass).
    #[test]
    fn commit_chains_are_bit_identical(
        seed in 0u64..200,
        rebase_every in 0usize..4,
    ) {
        for width in ALL_WIDTHS {
            let mut reference = random_netlist(seed, 5, 40, 4);
            let p = Patterns::random(reference.input_count(), 200, seed ^ 0xace);
            let mut delta = DeltaSim::new(reference.clone(), &p)
                .with_full_resim_every(rebase_every)
                .with_simd_width(width);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(17) ^ 9);
            for step in 0..6 {
                let (target, switch) = random_substitution(&reference, &mut rng);
                let a = delta.substitute(target, switch).expect("legal LAC");
                let b = reference.substitute(target, switch).expect("legal LAC");
                prop_assert_eq!(a, b, "rewritten counts at step {} W{}", step, width);
                let full = simulate(&reference, &p);
                assert_words_match(&delta, &full, &format!("seed {seed} W{width} step {step}"));
            }
            prop_assert_eq!(delta.netlist(), &reference);
        }
    }

    /// The full scoring path: incremental error, timing, and area agree
    /// with a from-scratch evaluation of the materialized mutant.
    #[test]
    fn score_lac_matches_full_evaluation(seed in 0u64..150) {
        let n = random_netlist(seed, 6, 60, 5);
        let p = Patterns::random(n.input_count(), 256, seed ^ 0xf00d);
        let ctx = EvalContext::new(&n, p, ErrorMetric::ErrorRate, TimingConfig::default(), 0.8);
        let base = ctx.delta_eval(n.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        for _ in 0..3 {
            let (target, switch) = random_substitution(&n, &mut rng);
            let lac = Lac::new(target, switch);
            let score = ctx.score_lac(&base, lac);
            let full = ctx.evaluate_lac(&base, lac);
            let mut mutant = n.clone();
            mutant.substitute(target, switch).expect("legal LAC");
            let reference = ctx.evaluate(mutant);

            // Error terms share the bit-parallel word expansion: exact.
            prop_assert_eq!(score.error, reference.error);
            prop_assert_eq!(score.po_errors.clone(), reference.po_errors.clone());
            prop_assert_eq!(full.error, reference.error);
            // Timing and area follow the incremental settle tolerance.
            prop_assert_eq!(score.depth, reference.depth);
            prop_assert!((score.cpd - reference.cpd).abs() < 1e-9,
                "cpd {} vs {}", score.cpd, reference.cpd);
            prop_assert!((score.area - reference.area).abs() < 1e-9,
                "area {} vs {}", score.area, reference.area);
            for (a, b) in score.po_arrivals.iter().zip(reference.po_arrivals.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "po arrival {} vs {}", a, b);
            }
            prop_assert_eq!(full.netlist, reference.netlist);
        }
    }
}

/// Determinism satellite: DCGWO with incremental scoring produces
/// identical Pareto fronts (and identical surviving netlists) whether
/// offspring are scored on 1 thread or 4.
#[test]
fn dcgwo_pareto_front_is_thread_count_invariant() {
    let mut b = Builder::new("add6");
    let a = b.inputs("a", 6);
    let x = b.inputs("b", 6);
    let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
    b.outputs("s", &s);
    b.output("c", c);
    let n = b.finish();
    let ctx = EvalContext::new(
        &n,
        Patterns::exhaustive(12),
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    );
    let cfg = |threads: usize| {
        OptimizerConfig::default()
            .with_population(10)
            .with_iterations(6)
            .with_threads(threads)
            .with_seed(21)
    };
    let serial = optimize(&ctx, 0.05, &cfg(1));
    let parallel = optimize(&ctx, 0.05, &cfg(4));

    assert_eq!(serial.best.netlist, parallel.best.netlist);
    assert_eq!(serial.best.fitness, parallel.best.fitness);
    assert_eq!(serial.population.len(), parallel.population.len());
    for (a, b) in serial.population.iter().zip(&parallel.population) {
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.fitness, b.fitness);
        assert_eq!(a.error, b.error);
    }
    let front_a = serial.pareto_front();
    let front_b = parallel.pareto_front();
    assert_eq!(front_a, front_b, "identical Pareto fronts");
    for (x, y) in serial.history.iter().zip(&parallel.history) {
        assert_eq!(x.best_fitness, y.best_fitness);
        assert_eq!(x.feasible, y.feasible);
    }
}

/// The re-base knob must not change results, only when full
/// re-simulations happen.
#[test]
fn full_resim_knob_is_behavior_preserving() {
    let mut b = Builder::new("add4");
    let a = b.inputs("a", 4);
    let x = b.inputs("b", 4);
    let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
    b.outputs("s", &s);
    b.output("c", c);
    let n = b.finish();
    let ctx = EvalContext::new(
        &n,
        Patterns::exhaustive(8),
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    );
    let cfg = |every: usize| {
        OptimizerConfig::default()
            .with_population(8)
            .with_iterations(5)
            .with_seed(33)
            .with_full_resim_every(every)
    };
    let never = optimize(&ctx, 0.06, &cfg(0));
    let often = optimize(&ctx, 0.06, &cfg(1));
    assert_eq!(never.best.netlist, often.best.netlist);
    assert_eq!(never.best.fitness, often.best.fitness);
    for (x, y) in never.history.iter().zip(&often.history) {
        assert_eq!(x.best_fitness, y.best_fitness);
    }
}

/// Regression guard for the parallel scorer: a wide-kernel `DeltaSim`
/// scratch clone must stay `Send + Sync` (the worker pool moves clones
/// across threads), and the clone must carry the parent's width and
/// keep producing bit-identical previews from another thread.
#[test]
fn wide_delta_sim_scratch_clone_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>(_: &T) {}

    let n = random_netlist(77, 6, 50, 5);
    let p = Patterns::random(n.input_count(), 200, 0x5ca7c4);
    let parent = DeltaSim::new(n.clone(), &p).with_simd_width(SimdWidth::W8);
    let scratch = parent.clone();
    assert_send_sync(&scratch);
    assert_eq!(scratch.simd_width(), SimdWidth::W8);

    let mut rng = StdRng::seed_from_u64(0x7ead);
    let (target, switch) = random_substitution(&n, &mut rng);
    let expected = {
        let mut mutated = n.clone();
        mutated.substitute(target, switch).expect("legal LAC");
        simulate(&mutated, &p)
    };
    std::thread::scope(|scope| {
        scope
            .spawn(move || {
                let view = scratch.preview(target, switch);
                assert_words_match(&view, &expected, "scratch clone on another thread");
            })
            .join()
            .expect("worker thread");
    });
}

//! Integration tests for the unified session API: the shared
//! `Optimizer` trait across DCGWO and all four baselines, the
//! observer-event protocol (monotone iterations, guaranteed terminal
//! event, bounded-latency cancellation), and budget enforcement.

use std::cell::RefCell;

use proptest::prelude::*;
use tdals::baselines::{Method, MethodConfig, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::api::{Budget, CancelFlag, Flow, FlowEvent, FlowOutcome, StopReason};
use tdals::core::EvalContext;
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::TimingConfig;

fn quick_ctx(seed: u64) -> EvalContext {
    let accurate = Benchmark::Int2float.build();
    EvalContext::new(
        &accurate,
        Patterns::random(accurate.input_count(), 512, seed),
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    )
}

fn quick_cfg(seed: u64) -> MethodConfig {
    MethodConfig::default()
        .with_population(6)
        .with_iterations(4)
        .with_seed(seed)
}

/// The `iteration` carried by an event, when it has one.
fn event_iteration(ev: &FlowEvent) -> Option<usize> {
    match ev {
        FlowEvent::IterationStarted { iteration, .. }
        | FlowEvent::BestImproved { iteration, .. }
        | FlowEvent::LacAccepted { iteration, .. } => Some(*iteration),
        FlowEvent::IterationFinished { stats } => Some(stats.iteration),
        _ => None,
    }
}

#[test]
fn all_five_methods_run_through_the_shared_trait() {
    // The acceptance criterion in miniature: one EvalContext, one Flow
    // shape, five optimizers, one FlowOutcome type.
    let ctx = quick_ctx(42);
    let cfg = quick_cfg(5);
    let outcomes: Vec<FlowOutcome> = ALL_METHODS
        .iter()
        .map(|method| {
            Flow::for_context(&ctx)
                .error_bound(0.05)
                .optimizer(method.optimizer(&cfg))
                .run()
                .expect("valid session")
        })
        .collect();
    for (method, outcome) in ALL_METHODS.iter().zip(&outcomes) {
        assert!(
            outcome.error <= 0.05 + 1e-12,
            "{method}: error {}",
            outcome.error
        );
        assert!(outcome.ratio_cpd <= 1.0 + 1e-9, "{method}");
        assert!(outcome.area <= ctx.area_ori() + 1e-9, "{method}");
        assert_eq!(outcome.stop(), StopReason::Completed, "{method}");
        assert!(outcome.optimize.evaluations > 0, "{method}");
        outcome.netlist.check_invariants().expect("valid netlist");
    }
    // Method names surface in the shared outcome.
    let names: Vec<&str> = outcomes.iter().map(|o| o.method.as_str()).collect();
    assert_eq!(names, ["VECBEE-S", "VaACS", "HEDALS", "GWO", "DCGWO"]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Observer protocol, for every method and across seeds: event
    /// iterations are monotone non-decreasing, the terminal
    /// OptimizeFinished event fires exactly once, FlowStarted opens and
    /// FlowFinished closes the stream.
    #[test]
    fn events_are_monotone_with_guaranteed_terminal(seed in 0u64..40, method_idx in 0usize..5) {
        let ctx = quick_ctx(7);
        let method = ALL_METHODS[method_idx];
        let events: RefCell<Vec<FlowEvent>> = RefCell::new(Vec::new());
        Flow::for_context(&ctx)
            .error_bound(0.05)
            .optimizer(method.optimizer(&quick_cfg(seed)))
            .observe(|ev: &FlowEvent| events.borrow_mut().push(ev.clone()))
            .run()
            .expect("valid session");
        let events = events.into_inner();

        prop_assert!(matches!(events.first(), Some(FlowEvent::FlowStarted { .. })));
        prop_assert!(matches!(events.last(), Some(FlowEvent::FlowFinished { .. })));
        let terminals = events
            .iter()
            .filter(|e| matches!(e, FlowEvent::OptimizeFinished { .. }))
            .count();
        prop_assert_eq!(terminals, 1, "exactly one terminal optimizer event");

        let mut last_iteration = 0usize;
        for ev in &events {
            if let Some(iteration) = event_iteration(ev) {
                prop_assert!(
                    iteration >= last_iteration,
                    "iteration went backwards: {} after {} ({method})",
                    iteration,
                    last_iteration
                );
                last_iteration = iteration;
            }
        }

        // Post-opt phase events bracket correctly after the optimizer.
        let opt_done = events
            .iter()
            .position(|e| matches!(e, FlowEvent::OptimizeFinished { .. }))
            .expect("terminal exists");
        let post_start = events
            .iter()
            .position(|e| matches!(e, FlowEvent::PostOptStarted { .. }))
            .expect("post-opt starts");
        let post_done = events
            .iter()
            .position(|e| matches!(e, FlowEvent::PostOptFinished { .. }))
            .expect("post-opt finishes");
        prop_assert!(opt_done < post_start && post_start < post_done);
    }

    /// Cancelling from inside the observer stops the run within one
    /// iteration: no iteration beyond `cancel_at + 1` ever starts, and
    /// the outcome still carries a feasible best plus the terminal
    /// event.
    #[test]
    fn cancellation_stops_within_one_iteration(
        seed in 0u64..20,
        cancel_at in 0usize..3,
        method_idx in 0usize..5,
    ) {
        let ctx = quick_ctx(7);
        let method = ALL_METHODS[method_idx];
        let budget = Budget::unlimited();
        let flag: CancelFlag = budget.cancel_flag();
        let max_started: RefCell<Option<usize>> = RefCell::new(None);
        let terminal_seen = RefCell::new(false);
        let outcome = Flow::for_context(&ctx)
            .error_bound(0.05)
            .budget(budget)
            .optimizer(method.optimizer(&quick_cfg(seed)))
            .observe(|ev: &FlowEvent| {
                if let FlowEvent::IterationStarted { iteration, .. } = ev {
                    *max_started.borrow_mut() = Some(*iteration);
                    if *iteration == cancel_at {
                        flag.cancel();
                    }
                }
                if matches!(ev, FlowEvent::OptimizeFinished { .. }) {
                    *terminal_seen.borrow_mut() = true;
                }
            })
            .run()
            .expect("valid session");
        prop_assert!(*terminal_seen.borrow(), "terminal event fires on cancellation");
        // The core property: once the flag is raised during iteration
        // `cancel_at`, no later iteration ever starts. (The method may
        // also converge naturally before — or during — that round, in
        // which case it reports Completed.)
        if let Some(max) = *max_started.borrow() {
            prop_assert!(
                max <= cancel_at,
                "iteration {} started after cancellation at {} ({})",
                max,
                cancel_at,
                method
            );
        }
        prop_assert!(
            matches!(outcome.stop(), StopReason::Cancelled | StopReason::Completed),
            "{}: unexpected stop {:?}",
            method,
            outcome.stop()
        );
        prop_assert!(outcome.error <= 0.05 + 1e-12, "best stays feasible");
    }
}

#[test]
fn deadline_budget_is_honored() {
    let ctx = quick_ctx(3);
    let outcome = Flow::for_context(&ctx)
        .error_bound(0.05)
        .budget(Budget::unlimited().with_deadline(std::time::Duration::ZERO))
        .optimizer(Method::Dcgwo.optimizer(&quick_cfg(1)))
        .run()
        .expect("valid session");
    assert_eq!(outcome.stop(), StopReason::DeadlineExpired);
    assert!(outcome.history().is_empty());
    assert!(outcome.error <= 0.05 + 1e-12);
}

#[test]
fn iteration_budget_truncates_every_method() {
    let ctx = quick_ctx(9);
    for method in ALL_METHODS {
        let outcome = Flow::for_context(&ctx)
            .error_bound(0.05)
            .budget(Budget::unlimited().with_max_iterations(2))
            .optimizer(method.optimizer(&quick_cfg(2)))
            .run()
            .expect("valid session");
        assert!(
            outcome.history().len() <= 2,
            "{method}: {} iterations ran past a 2-iteration budget",
            outcome.history().len()
        );
        assert!(outcome.error <= 0.05 + 1e-12, "{method}");
    }
}

#[test]
fn evaluation_counts_are_deterministic() {
    let ctx = quick_ctx(21);
    let run = || {
        Flow::for_context(&ctx)
            .error_bound(0.05)
            .optimizer(Method::Dcgwo.optimizer(&quick_cfg(6)))
            .run()
            .expect("valid session")
    };
    let a = run();
    let b = run();
    assert_eq!(a.optimize.evaluations, b.optimize.evaluations);
    assert_eq!(a.netlist, b.netlist);
}

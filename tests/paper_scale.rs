//! Paper-scale reproduction runs, gated behind `#[ignore]` so that
//! `cargo test -q` stays fast (the quick suite finishes in seconds).
//!
//! Run them explicitly with
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```
//!
//! and set `TDALS_EFFORT=full` for the paper's full population/vector
//! budgets (`quick`/`standard`/`full`; default `standard`). The nine
//! `tdals-bench` binaries (`table1` … `fig8_area_sweep`) reproduce the
//! complete tables and figures; these tests pin down the headline
//! claims on one benchmark per class.

use tdals::baselines::{Method, MethodConfig};
use tdals::circuits::Benchmark;
use tdals::core::api::{Flow, FlowOutcome};
use tdals::core::EvalContext;
use tdals_bench::{context_for, level_we, Effort, ER_BOUNDS, NMED_BOUNDS};

fn cfg_for(effort: Effort, metric: tdals::sim::ErrorMetric, seed: u64) -> MethodConfig {
    MethodConfig::default()
        .with_population(effort.population())
        .with_iterations(effort.iterations())
        .with_level_we(level_we(metric))
        .with_seed(seed)
}

fn run_method(ctx: &EvalContext, method: Method, bound: f64, cfg: &MethodConfig) -> FlowOutcome {
    Flow::for_context(ctx)
        .error_bound(bound)
        .optimizer(method.optimizer(cfg))
        .run()
        .expect("valid session")
}

#[test]
#[ignore = "paper-scale (minutes); run with --ignored, TDALS_EFFORT=full for paper budgets"]
fn dcgwo_meets_every_nmed_bound_on_max16() {
    let effort = Effort::from_env();
    let (ctx, metric) = context_for(Benchmark::Max16, effort);
    for bound in NMED_BOUNDS {
        let result = run_method(&ctx, Method::Dcgwo, bound, &cfg_for(effort, metric, 1));
        assert!(
            result.error <= bound + 1e-12,
            "NMED {} exceeds bound {bound}",
            result.error
        );
        assert!(
            result.ratio_cpd <= 1.0 + 1e-9,
            "ratio_cpd {} above 1 at bound {bound}",
            result.ratio_cpd
        );
    }
}

#[test]
#[ignore = "paper-scale (minutes); run with --ignored, TDALS_EFFORT=full for paper budgets"]
fn dcgwo_meets_every_er_bound_on_c880() {
    let effort = Effort::from_env();
    let (ctx, metric) = context_for(Benchmark::C880, effort);
    for bound in ER_BOUNDS {
        let result = run_method(&ctx, Method::Dcgwo, bound, &cfg_for(effort, metric, 1));
        assert!(
            result.error <= bound + 1e-12,
            "ER {} exceeds bound {bound}",
            result.error
        );
        assert!(result.ratio_cpd <= 1.0 + 1e-9);
    }
    // At the loosest budget a 5% error rate must buy real delay.
    let result = run_method(&ctx, Method::Dcgwo, 0.05, &cfg_for(effort, metric, 1));
    assert!(
        result.ratio_cpd < 1.0,
        "5% ER bought no delay reduction (ratio {})",
        result.ratio_cpd
    );
}

#[test]
#[ignore = "paper-scale (minutes); run with --ignored, TDALS_EFFORT=full for paper budgets"]
fn dcgwo_tracks_single_chase_across_the_suite_subset() {
    // The paper's headline: averaged over circuits, DCGWO's delay ratio
    // beats the single-chase GWO under identical budgets.
    let effort = Effort::from_env();
    let mut ours = 0.0;
    let mut gwo = 0.0;
    let benches = effort.filter(vec![Benchmark::Max16, Benchmark::Adder16, Benchmark::C880]);
    assert!(!benches.is_empty());
    let seeds = [7u64, 8, 9];
    for bench in &benches {
        let (ctx, metric) = context_for(*bench, effort);
        let bound = match metric {
            tdals::sim::ErrorMetric::ErrorRate => 0.05,
            tdals::sim::ErrorMetric::Nmed => 0.0244,
        };
        for seed in seeds {
            let cfg = cfg_for(effort, metric, seed);
            ours += run_method(&ctx, Method::Dcgwo, bound, &cfg).ratio_cpd;
            gwo += run_method(&ctx, Method::SingleChaseGwo, bound, &cfg).ratio_cpd;
        }
    }
    let n = (benches.len() * seeds.len()) as f64;
    assert!(
        ours / n <= gwo / n + 0.05,
        "DCGWO avg ratio {} vs single-chase {}",
        ours / n,
        gwo / n
    );
}

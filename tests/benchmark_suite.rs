//! Integration checks over the regenerated benchmark suite: TABLE I
//! metadata, determinism, functional sanity of the arithmetic cores via
//! simulation, and timing plausibility via STA.

use tdals::circuits::{Benchmark, CircuitClass, ALL_BENCHMARKS};
use tdals::sim::{simulate, Patterns};
use tdals::sta::{analyze, TimingConfig};

#[test]
fn every_benchmark_builds_validates_and_times() {
    let cfg = TimingConfig::default();
    for bench in ALL_BENCHMARKS {
        let n = bench.build();
        n.check_invariants()
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        let report = analyze(&n, &cfg);
        assert!(report.critical_path_delay() > 0.0, "{bench} has zero CPD");
        assert!(report.max_depth() >= 2, "{bench} is too shallow");
        assert!(n.area_live() > 0.0, "{bench} has zero area");
        // No dangling gates in freshly generated benchmarks.
        assert!(
            n.live_mask().iter().all(|&l| l),
            "{bench} has dangling gates at birth"
        );
    }
}

#[test]
fn adder16_adds() {
    let n = Benchmark::Adder16.build();
    let p = Patterns::random(32, 2048, 99);
    let r = simulate(&n, &p);
    for v in 0..p.vector_count() {
        let a: u64 = (0..16).map(|i| u64::from(p.bit(i, v)) << i).sum();
        let b: u64 = (0..16).map(|i| u64::from(p.bit(16 + i, v)) << i).sum();
        let got: u64 = (0..17)
            .map(|po| (r.po_word(po, v / 64) >> (v % 64) & 1) << po)
            .sum();
        assert_eq!(got, a + b, "{a} + {b}");
    }
}

#[test]
fn c6288_multiplies() {
    let n = Benchmark::C6288.build();
    let p = Patterns::random(32, 1024, 5);
    let r = simulate(&n, &p);
    for v in 0..p.vector_count() {
        let a: u64 = (0..16).map(|i| u64::from(p.bit(i, v)) << i).sum();
        let b: u64 = (0..16).map(|i| u64::from(p.bit(16 + i, v)) << i).sum();
        let got: u64 = (0..32)
            .map(|po| (r.po_word(po, v / 64) >> (v % 64) & 1) << po)
            .sum();
        assert_eq!(got, a * b, "{a} * {b}");
    }
}

#[test]
fn max16_selects_maximum() {
    let n = Benchmark::Max16.build();
    let p = Patterns::random(32, 2048, 6);
    let r = simulate(&n, &p);
    for v in 0..p.vector_count() {
        let a: u64 = (0..16).map(|i| u64::from(p.bit(i, v)) << i).sum();
        let b: u64 = (0..16).map(|i| u64::from(p.bit(16 + i, v)) << i).sum();
        let got: u64 = (0..16)
            .map(|po| (r.po_word(po, v / 64) >> (v % 64) & 1) << po)
            .sum();
        assert_eq!(got, a.max(b));
    }
}

#[test]
fn adder128_adds_full_width() {
    let n = Benchmark::Adder.build();
    let p = Patterns::random(256, 512, 7);
    let r = simulate(&n, &p);
    for v in 0..p.vector_count() {
        let a: u128 = (0..128)
            .map(|i| u128::from(p.bit(i, v)) << i)
            .fold(0, |acc, x| acc | x);
        let b: u128 = (0..128)
            .map(|i| u128::from(p.bit(128 + i, v)) << i)
            .fold(0, |acc, x| acc | x);
        let (sum, carry) = a.overflowing_add(b);
        let got: u128 = (0..128)
            .map(|po| u128::from(r.po_word(po, v / 64) >> (v % 64) & 1) << po)
            .fold(0, |acc, x| acc | x);
        let got_carry = r.po_word(128, v / 64) >> (v % 64) & 1 == 1;
        assert_eq!(got, sum, "vector {v}");
        assert_eq!(got_carry, carry, "carry at vector {v}");
    }
}

#[test]
fn sqrt_matches_floor_sqrt_on_low_range() {
    use tdals::circuits::arith::isqrt;
    use tdals::netlist::builder::Builder;
    // The 128-bit unit is too wide to steer through random PIs; verify
    // the identical generator at 16 bits exhaustively-ish.
    let mut b = Builder::new("sqrt16");
    let x = b.inputs("x", 16);
    let q = isqrt(&mut b, &x);
    b.outputs("q", &q);
    let n = b.finish();
    let p = Patterns::random(16, 4096, 11);
    let r = simulate(&n, &p);
    for v in 0..p.vector_count() {
        let xv: u64 = (0..16).map(|i| u64::from(p.bit(i, v)) << i).sum();
        let got: u64 = (0..8)
            .map(|po| (r.po_word(po, v / 64) >> (v % 64) & 1) << po)
            .sum();
        assert_eq!(got, (xv as f64).sqrt().floor() as u64, "isqrt({xv})");
    }
}

#[test]
fn benchmarks_are_deterministic() {
    for bench in [
        Benchmark::Cavlc,
        Benchmark::C2670,
        Benchmark::C7552,
        Benchmark::Sin,
    ] {
        assert_eq!(bench.build(), bench.build(), "{bench}");
    }
}

#[test]
fn class_split_matches_paper_tables() {
    let rc: Vec<&str> = Benchmark::random_control()
        .iter()
        .map(|b| b.name())
        .collect();
    assert_eq!(
        rc,
        ["Cavlc", "c880", "c1908", "c2670", "c3540", "c5315", "c7552"]
    );
    let arith: Vec<&str> = Benchmark::arithmetic().iter().map(|b| b.name()).collect();
    assert_eq!(
        arith,
        [
            "Int2float",
            "Adder16",
            "Max16",
            "c6288",
            "Adder",
            "Max",
            "Sin",
            "Sqrt"
        ]
    );
    for b in ALL_BENCHMARKS {
        let expected = matches!(
            b.name(),
            "Cavlc" | "c880" | "c1908" | "c2670" | "c3540" | "c5315" | "c7552"
        );
        assert_eq!(b.class() == CircuitClass::RandomControl, expected);
    }
}

#[test]
fn arithmetic_outputs_are_lsb_first_for_nmed() {
    // NMED treats PO 0 as the LSB; benchmark generators must emit
    // output buses LSB-first. Flipping the MSB must move the output
    // value by more than flipping the LSB.
    let n = Benchmark::Adder16.build();
    let p = Patterns::random(32, 1024, 13);
    let golden = simulate(&n, &p);

    let mut lsb = n.clone();
    let d = lsb.output_driver(0).gate().expect("gate");
    lsb.substitute(d, tdals::netlist::SignalRef::Const0)
        .expect("lac");
    let mut msb = n.clone();
    let d = msb.output_driver(15).gate().expect("gate");
    msb.substitute(d, tdals::netlist::SignalRef::Const0)
        .expect("lac");

    let nmed_lsb = tdals::sim::nmed(&golden, &simulate(&lsb, &p));
    let nmed_msb = tdals::sim::nmed(&golden, &simulate(&msb, &p));
    assert!(
        nmed_msb > nmed_lsb * 100.0,
        "MSB damage ({nmed_msb}) must dwarf LSB damage ({nmed_lsb})"
    );
}

//! Pins the umbrella crate's re-export surface: every module advertised
//! in the `tdals` crate docs (`netlist`, `sim`, `sta`, `circuits`,
//! `core`, `baselines`, `server`) must resolve and expose its
//! documented types.
//! Everything here goes through `tdals::…` paths only — no direct
//! `tdals_*` crate imports — so a broken re-export is a compile error.

use tdals::baselines::{Genetic, Greedy, Hedals, Method, MethodConfig, ALL_METHODS};
use tdals::circuits::{Benchmark, CircuitClass, ALL_BENCHMARKS};
use tdals::cluster::{
    merge, plan, ClusterError, ShardPlan, ShardPolicy, SupervisorOptions, SHARD_MAP_SCHEMA,
};
use tdals::core::api::{
    Budget, CancelFlag, Dcgwo, Flow, FlowError, FlowEvent, FlowOutcome, NopObserver, Observer,
    OptimizeOutcome, Optimizer, StopReason,
};
use tdals::core::{ChaseStrategy, EvalContext, OptimizerConfig, PostOptConfig};
use tdals::netlist::builder::Builder;
use tdals::netlist::cell::{Cell, CellFunc, Drive};
use tdals::netlist::{verilog, GateId, Netlist, SignalRef};
use tdals::server::{
    error_frame, event_from_json, event_to_json, BatchOptions, BatchRun, Connection, Daemon,
    DaemonConfig, ErrorCode, FlowJob, FrameError, JobBudget, Manifest, Request, Scheduler,
    SchedulerConfig, ServerError, SessionStatus, DEFAULT_MAX_FRAME_LEN, PROTOCOL_SCHEMA,
};
use tdals::sim::{
    simulate, simulate_with_width, ErrorMetric, ParseSimdWidthError, Patterns, SimdWidth,
    ALL_WIDTHS,
};
use tdals::sta::{analyze, SizingConfig, TimingConfig};

#[test]
fn netlist_surface_resolves() {
    let mut b = Builder::new("reexport");
    let a = b.input("a");
    let x = b.input("x");
    let g = b.and(a, x);
    b.output("y", g);
    let n: Netlist = b.finish();
    assert_eq!(n.input_count(), 2);
    assert_eq!(n.output_count(), 1);

    // Low-level types are reachable through the umbrella too.
    let cell = Cell::new(CellFunc::And2, Drive::X1);
    assert!(cell.area() > 0.0);
    let _id: GateId = GateId::new(0);
    let _const0: SignalRef = SignalRef::Const0;

    // Verilog I/O round-trips through the re-exported module.
    let text = verilog::to_verilog(&n);
    let again = verilog::parse(&text).expect("umbrella verilog parses");
    assert_eq!(again.input_count(), n.input_count());
}

#[test]
fn sim_surface_resolves() {
    let n = Benchmark::Int2float.build();
    let p = Patterns::random(n.input_count(), 256, 3);
    let r = simulate(&n, &p);
    assert_eq!(tdals::sim::error_rate(&r, &r), 0.0);
    assert_eq!(tdals::sim::nmed(&r, &r), 0.0);
    assert_eq!(ErrorMetric::Nmed.compute(&r, &r), 0.0);

    // The SIMD width surface: enum, parse error, explicit-width engine.
    assert_eq!(ALL_WIDTHS.len(), 3);
    assert_eq!(SimdWidth::W8.lanes(), 8);
    let bad: ParseSimdWidthError = "2".parse::<SimdWidth>().unwrap_err();
    assert_eq!(bad.input(), "2");
    for width in ALL_WIDTHS {
        let wide = simulate_with_width(&n, &p, width);
        assert_eq!(tdals::sim::error_rate(&r, &wide), 0.0, "W{width}");
    }
}

#[test]
fn sta_surface_resolves() {
    let n = Benchmark::Adder16.build();
    let report = analyze(&n, &TimingConfig::default());
    assert!(report.critical_path_delay() > 0.0);
    let _sizing = SizingConfig::default();
}

#[test]
fn circuits_surface_resolves() {
    assert_eq!(ALL_BENCHMARKS.len(), 15, "TABLE I has 15 circuits");
    assert_eq!(Benchmark::C880.class(), CircuitClass::RandomControl);
    assert_eq!(Benchmark::Max16.class(), CircuitClass::Arithmetic);
}

#[test]
fn core_surface_resolves() {
    let opt = OptimizerConfig::default();
    assert_eq!(opt.chase, ChaseStrategy::DoubleChase);
    let n = Benchmark::Int2float.build();
    let _post = PostOptConfig::new(n.area_live());
    let ctx = EvalContext::new(
        &n,
        Patterns::random(n.input_count(), 256, 4),
        ErrorMetric::Nmed,
        TimingConfig::default(),
        0.8,
    )
    .with_simd_width(SimdWidth::W4);
    assert!(ctx.cpd_ori() > 0.0);
    assert_eq!(ctx.simd_width(), SimdWidth::W4);
}

#[test]
fn baselines_surface_resolves() {
    assert!(ALL_METHODS.contains(&Method::Dcgwo));
    let cfg = MethodConfig::default()
        .with_population(4)
        .with_iterations(2)
        .with_level_we(0.2)
        .with_seed(1);
    assert_eq!(cfg.population, 4);

    // The baseline Optimizer adapters are reachable through the
    // umbrella and usable as trait objects.
    let adapters: Vec<Box<dyn Optimizer>> = vec![
        Box::new(Greedy::default()),
        Box::new(Genetic::default()),
        Box::new(Hedals::default()),
        Method::Vaacs.optimizer(&cfg),
    ];
    assert_eq!(adapters.len(), 4);
}

#[test]
fn par_surface_resolves() {
    // The deterministic worker pool is reachable through the umbrella
    // and honors its order/identity contract.
    assert!(tdals::core::par::available_threads() >= 1);
    assert_eq!(tdals::core::par::resolve_threads(0), {
        tdals::core::par::available_threads()
    });
    let doubled = tdals::core::par::par_map(4, vec![1, 2, 3], |x: i32| x * 2);
    assert_eq!(doubled, vec![2, 4, 6]);
    let batched = tdals::core::par::par_map_batched(2, vec![1, 2, 3], |x: i32| x + 1, || true);
    assert!(batched.completed);
    assert_eq!(batched.results, vec![2, 3, 4]);
    // The thread knobs thread through every configuration layer.
    assert_eq!(OptimizerConfig::default().with_threads(4).threads, 4);
    assert_eq!(MethodConfig::default().with_threads(4).threads, 4);
}

#[test]
fn api_surface_resolves() {
    // Session API types reachable through the umbrella.
    let budget: Budget = Budget::unlimited()
        .with_max_iterations(3)
        .with_max_evaluations(1000);
    let flag: CancelFlag = budget.cancel_flag();
    assert!(!flag.is_cancelled());
    assert_eq!(budget.max_iterations(), Some(3));

    let mut obs: NopObserver = NopObserver;
    obs.on_event(&FlowEvent::PostOptStarted { area_con: 1.0 });
    let _stop: StopReason = StopReason::Completed;
    let _err: FlowError = FlowError::MissingErrorBound;

    let mut dcgwo: Dcgwo = Dcgwo::paper_for(ErrorMetric::Nmed).quick(4, 2);
    assert_eq!(Optimizer::name(&dcgwo), "DCGWO");
    assert_eq!(Dcgwo::single_chase().name(), "GWO");

    let accurate = Benchmark::Int2float.build();
    let ctx = EvalContext::new(
        &accurate,
        Patterns::random(accurate.input_count(), 256, 4),
        ErrorMetric::Nmed,
        TimingConfig::default(),
        0.8,
    );
    let outcome: OptimizeOutcome = dcgwo.optimize(&ctx, 0.02, &budget, &mut obs);
    assert!(outcome.best.error <= 0.02 + 1e-12);

    let session: FlowOutcome = Flow::for_context(&ctx)
        .error_bound(0.02)
        .optimizer(dcgwo)
        .run()
        .expect("valid session");
    assert!(session.ratio_cpd <= 1.0 + 1e-9);
}

#[test]
fn server_surface_resolves() {
    // The slot-leasing primitive behind the scheduler.
    let pool = tdals::core::par::SlotPool::new(2);
    assert_eq!(pool.total(), 2);
    let lease = pool.lease(1, 2, 0).expect("grantable");
    assert_eq!(lease.width(), 2);
    drop(lease);
    assert_eq!(pool.available(), 2);

    // The scheduler itself, end to end through the umbrella.
    assert_eq!(
        Scheduler::new(SchedulerConfig::new(0)).err(),
        Some(ServerError::NoWorkers)
    );
    let scheduler = Scheduler::new(SchedulerConfig::new(2)).expect("valid config");
    let job = FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(4, 2)
        .with_vectors(256)
        .with_budget(JobBudget {
            max_iterations: Some(2),
            ..JobBudget::default()
        });
    let text = Manifest::new(vec![job.clone()]).to_json().to_string();
    let parsed = Manifest::parse(&text, &|p| Err(format!("no files: {p}"))).expect("round-trips");
    assert_eq!(parsed.jobs, vec![job.clone()]);
    let handle = scheduler.submit(job).expect("admitted");
    let outcome = handle.result().expect("completed");
    scheduler.drain();
    assert_eq!(handle.status(), SessionStatus::Completed);
    assert!(outcome.error <= 0.05 + 1e-12);
    assert_eq!(Method::parse("hedals"), Some(Method::Hedals));
    assert_eq!(Method::Dcgwo.cli_name(), "dcgwo");
}

#[test]
fn protocol_surface_resolves() {
    // The daemon's wire layer, end to end through the umbrella: frame a
    // request, parse it back, run it against a transport-free daemon,
    // and round-trip a flow event.
    assert_eq!(PROTOCOL_SCHEMA, 1);
    let _default_limit: usize = DEFAULT_MAX_FRAME_LEN;
    assert_eq!(ErrorCode::parse("queue-full"), Some(ErrorCode::QueueFull));
    let _err: FrameError = FrameError::Truncated { bytes: 3 };
    let boom = error_frame(ErrorCode::BadRequest, "nope");
    assert_eq!(
        tdals::server::as_error(&boom),
        Some(("bad-request", "nope"))
    );

    let request = Request::Health;
    assert_eq!(
        Request::from_json(&request.to_json()).expect("round-trips"),
        request
    );

    let daemon = Daemon::new(DaemonConfig::new(1)).expect("valid config");
    let reply = daemon.handle(&request.to_json());
    assert_eq!(reply.get("ok").and_then(|v| v.as_str()), Some("health"));

    let event = FlowEvent::PostOptStarted { area_con: 2.5 };
    assert_eq!(event_from_json(&event_to_json(&event)).as_ref(), Ok(&event));

    // Connection is generic over any duplex byte stream.
    let _conn: Connection<std::io::Cursor<Vec<u8>>> =
        Connection::new(std::io::Cursor::new(Vec::new()));
}

#[test]
fn cluster_surface_resolves() {
    // The shard coordinator, end to end through the umbrella: plan a
    // manifest, round-trip the shard map, run both shards in-process
    // through the batch engine, and merge byte-identically.
    assert_eq!(SHARD_MAP_SCHEMA, 1);
    assert_eq!(
        ShardPolicy::parse("round-robin"),
        Some(ShardPolicy::RoundRobin)
    );
    assert_eq!(ShardPolicy::SizeWeighted.cli_name(), "size-weighted");
    let _opts = SupervisorOptions::new()
        .with_retries(1)
        .with_total_threads(2);
    let _err: ClusterError = ClusterError::Merge { what: "x".into() };

    let jobs: Vec<FlowJob> = [3u64, 5, 7]
        .iter()
        .map(|&seed| {
            FlowJob::benchmark(Benchmark::Int2float)
                .with_bound(0.05)
                .with_scale(4, 1)
                .with_vectors(256)
                .with_seed(seed)
                .with_name(format!("job-{seed}"))
        })
        .collect();
    let manifest = Manifest::new(jobs);
    let shard_plan = plan(&manifest, 2, ShardPolicy::RoundRobin).expect("plannable");
    let round_trip = ShardPlan::from_json(&shard_plan.to_json()).expect("map round-trips");
    assert_eq!(round_trip, shard_plan);

    let opts = BatchOptions::new().with_total_threads(1);
    let docs: Vec<String> = (0..shard_plan.shard_count())
        .map(|s| {
            let run = BatchRun::prepare(&shard_plan.manifest_for(&manifest, s), &opts)
                .expect("shard prepares");
            format!(
                "{}\n",
                run.run(&mut |_, _, _| {}).expect("shard runs").document()
            )
        })
        .collect();
    let merged = merge(&shard_plan, &docs).expect("merges");

    let solo = BatchRun::prepare(&manifest, &opts).expect("solo prepares");
    let solo_doc = format!(
        "{}\n",
        solo.run(&mut |_, _, _| {}).expect("solo runs").document()
    );
    assert_eq!(merged, solo_doc);
}

#[test]
fn quickstart_types_compose_across_reexports() {
    // The crate-docs quickstart in miniature: umbrella paths from every
    // module cooperating in one session invocation.
    let accurate = Benchmark::Int2float.build();
    let result = Flow::for_netlist(&accurate)
        .metric(ErrorMetric::Nmed)
        .error_bound(0.02)
        .vectors(256)
        .simd_width(SimdWidth::W8)
        .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(4, 2))
        .run()
        .expect("valid session");
    assert!(result.error <= 0.02 + 1e-12);
    assert!(result.ratio_cpd <= 1.0 + 1e-9);
    result.netlist.check_invariants().expect("valid result");
}

//! Multi-tenant scheduler acceptance suite.
//!
//! The `tdals-server` scheduler promises *isolation with determinism*:
//! a [`FlowJob`] run through the scheduler — any pool width, any
//! co-tenant mix, any cancellation pattern around it — produces a
//! digest (outcome numbers, final netlists, history, full event stream
//! minus the one wall-clock field) bit-identical to the same job run
//! directly via `Flow` on the calling thread. This suite holds it to
//! that under {mixed methods} × {with/without budgets} ×
//! {cancel-subset}, checks that slots never leak, that admission
//! follows priority-then-FIFO order, that thread over-asks are typed
//! errors, that panics stay contained, and that the `serve-batch` CLI
//! output is byte-identical across `--total-threads 1` vs `4`.

use std::process::Command;
use std::time::Duration;

use tdals::obs::clock;

use tdals::baselines::{Method, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::api::{FlowEvent, FlowOutcome, Observer, StopReason};
use tdals::netlist::Netlist;
use tdals::server::{
    FlowJob, JobBudget, Manifest, ManifestError, Scheduler, SchedulerConfig, ServerError,
    SessionError, SessionStatus,
};

/// A comparable fingerprint of one event (the `tests/parallel.rs`
/// convention): `{:?}` on `f64` is shortest-round-trip, so keys match
/// iff values are bit-identical; `FlowFinished::runtime_s` — the one
/// wall-clock field — is stripped.
fn event_key(ev: &FlowEvent) -> String {
    match ev {
        FlowEvent::FlowFinished {
            ratio_cpd, error, ..
        } => format!("done {ratio_cpd:?} {error:?}"),
        other => format!("{other:?}"),
    }
}

/// Collects event keys; the solo-run counterpart of
/// `SessionHandle::poll_events`.
#[derive(Default)]
struct Keys(Vec<String>);

impl Observer for Keys {
    fn on_event(&mut self, event: &FlowEvent) {
        self.0.push(event_key(event));
    }
}

/// Everything observable about one job's run that co-tenancy must not
/// perturb.
#[derive(Debug, PartialEq)]
struct Digest {
    method: String,
    final_netlist: Netlist,
    best_fitness: f64,
    error: f64,
    area: f64,
    ratio_cpd: f64,
    evaluations: u64,
    stop: StopReason,
    history_len: usize,
    events: Vec<String>,
}

fn digest(outcome: &FlowOutcome, events: Vec<String>) -> Digest {
    Digest {
        method: outcome.method.clone(),
        final_netlist: outcome.netlist.clone(),
        best_fitness: outcome.optimize.best.fitness,
        error: outcome.error,
        area: outcome.area,
        ratio_cpd: outcome.ratio_cpd,
        evaluations: outcome.optimize.evaluations,
        stop: outcome.stop(),
        history_len: outcome.optimize.history.len(),
        events,
    }
}

/// The reference semantics: the job run directly on this thread.
fn solo_digest(job: &FlowJob) -> Digest {
    let mut keys = Keys::default();
    let outcome = job
        .run_with(1, job.budget.to_budget(), &mut keys)
        .expect("valid job");
    digest(&outcome, keys.0)
}

/// Waits for `cond` with a generous deadline so a broken scheduler
/// fails the test instead of hanging CI.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = clock::now() + Duration::from_secs(120);
    while !cond() {
        assert!(clock::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn quick_job(method: Method, seed: u64) -> FlowJob {
    FlowJob::benchmark(Benchmark::Int2float)
        .with_method(method)
        .with_bound(0.05)
        .with_scale(6, 3)
        .with_vectors(512)
        .with_seed(seed)
}

#[test]
fn concurrent_mixed_methods_match_solo_digests() {
    // K = 6 sessions (all five methods + one extra DCGWO), half with
    // deterministic budgets, sharing a 4-slot pool — up to 4 run at
    // once. Every digest must equal its solo run bit-for-bit.
    let mut jobs: Vec<FlowJob> = ALL_METHODS
        .into_iter()
        .enumerate()
        .map(|(i, method)| {
            let job = quick_job(method, 11 + i as u64);
            match i % 3 {
                0 => job,
                1 => job.with_budget(JobBudget {
                    max_evaluations: Some(10),
                    ..JobBudget::default()
                }),
                _ => job.with_budget(JobBudget {
                    max_iterations: Some(1),
                    ..JobBudget::default()
                }),
            }
        })
        .collect();
    jobs.push(
        quick_job(Method::Dcgwo, 99)
            .with_metric(tdals::sim::ErrorMetric::Nmed)
            .with_bound(0.02),
    );
    let solo: Vec<Digest> = jobs.iter().map(solo_digest).collect();

    let scheduler = Scheduler::new(SchedulerConfig::new(4)).expect("valid config");
    let handles: Vec<_> = jobs
        .iter()
        .map(|job| scheduler.submit(job.clone()).expect("admitted"))
        .collect();
    scheduler.drain();
    assert_eq!(scheduler.active_sessions(), 0);
    assert_eq!(scheduler.waiting_sessions(), 0);
    assert_eq!(
        scheduler.available_threads(),
        scheduler.total_threads(),
        "every slot returned to the pool"
    );

    for ((job, handle), solo) in jobs.iter().zip(&handles).zip(&solo) {
        assert_eq!(handle.status(), SessionStatus::Completed, "{}", job.name);
        let outcome = handle.result().expect("completed");
        let events: Vec<String> = handle.poll_events().iter().map(event_key).collect();
        assert_eq!(
            &digest(&outcome, events),
            solo,
            "{} ({}) diverged from its solo run under co-tenancy",
            job.name,
            job.method.cli_name()
        );
    }
}

#[test]
fn cancelled_subset_never_perturbs_survivors() {
    // Three long-running victims and three normal survivors (pinned
    // seeds) contend for 2 slots; victims are cancelled mid-flight (one
    // before it can start). Survivors must match their solo digests
    // bit-for-bit, victims must stop as cancelled within an iteration,
    // and the pool must drain back to idle with no slot leaked.
    let victims: Vec<FlowJob> = (0..3)
        .map(|i| {
            FlowJob::benchmark(Benchmark::Int2float)
                .with_bound(0.05)
                .with_scale(4, 400)
                .with_vectors(256)
                .with_seed(1000 + i)
        })
        .collect();
    let survivors: Vec<FlowJob> = [Method::Dcgwo, Method::Hedals, Method::Vaacs]
        .into_iter()
        .enumerate()
        .map(|(i, m)| quick_job(m, 21 + i as u64))
        .collect();
    let solo: Vec<Digest> = survivors.iter().map(solo_digest).collect();

    let scheduler = Scheduler::new(SchedulerConfig::new(2)).expect("valid config");
    // Interleave: victim, survivor, victim, survivor, victim, survivor.
    let v0 = scheduler.submit(victims[0].clone()).expect("admitted");
    let s0 = scheduler.submit(survivors[0].clone()).expect("admitted");
    let v1 = scheduler.submit(victims[1].clone()).expect("admitted");
    let s1 = scheduler.submit(survivors[1].clone()).expect("admitted");
    let v2 = scheduler.submit(victims[2].clone()).expect("admitted");
    let s2 = scheduler.submit(survivors[2].clone()).expect("admitted");

    // v2 is cancelled immediately — most likely still queued.
    v2.cancel();
    // v0 and v1 are cancelled once seen running an iteration.
    for victim in [&v0, &v1] {
        let mut seen = Vec::new();
        wait_for("victim to run an iteration", || {
            seen.extend(victim.poll_events());
            seen.iter()
                .any(|ev| matches!(ev, FlowEvent::IterationFinished { .. }))
        });
        victim.cancel();
    }

    scheduler.drain();
    assert_eq!(scheduler.active_sessions(), 0);
    assert_eq!(scheduler.waiting_sessions(), 0);
    assert_eq!(
        scheduler.available_threads(),
        scheduler.total_threads(),
        "cancellation leaked pool slots"
    );

    for victim in [&v0, &v1, &v2] {
        let outcome = victim.result().expect("cancelled runs still report a best");
        assert_eq!(outcome.stop(), StopReason::Cancelled, "{}", victim.name());
        assert!(
            outcome.optimize.history.len() < 400,
            "victim ran to completion despite cancellation"
        );
        assert!(outcome.error <= 0.05 + 1e-12, "best is still feasible");
    }
    for ((job, handle), solo) in survivors.iter().zip([&s0, &s1, &s2]).zip(&solo) {
        let outcome = handle.result().expect("completed");
        let events: Vec<String> = handle.poll_events().iter().map(event_key).collect();
        assert_eq!(
            &digest(&outcome, events),
            solo,
            "survivor {} ({}) perturbed by cancelled co-tenants",
            job.name,
            job.method.cli_name()
        );
    }
}

#[test]
fn cancelled_queued_session_does_not_wait_for_a_slot() {
    // A cancelled session that never got a lease must not sit blocked
    // behind a long-running co-tenant: it abandons the line promptly
    // and winds down, reporting Cancelled while the blocker still runs.
    let scheduler = Scheduler::new(SchedulerConfig::new(1)).expect("valid config");
    let blocker = scheduler
        .submit(
            FlowJob::benchmark(Benchmark::Int2float)
                .with_bound(0.05)
                .with_scale(4, 500)
                .with_vectors(256)
                .with_seed(1),
        )
        .expect("admitted");
    wait_for("blocker to hold the only slot", || {
        matches!(blocker.status(), SessionStatus::Running { .. })
    });
    let queued = scheduler
        .submit(quick_job(Method::Dcgwo, 8))
        .expect("admitted");
    wait_for("queued session to enter the line", || {
        scheduler.waiting_sessions() == 1
    });
    queued.cancel();
    let outcome = queued.result().expect("cancelled runs still report a best");
    assert_eq!(outcome.stop(), StopReason::Cancelled);
    assert!(
        outcome.optimize.history.is_empty(),
        "never ran an iteration"
    );
    assert_eq!(
        queued.admission_index(),
        None,
        "a cancelled-while-queued session was never admitted"
    );
    assert!(
        matches!(blocker.status(), SessionStatus::Running { .. }),
        "the queued cancellation waited for the blocker to finish"
    );
    blocker.cancel();
    scheduler.drain();
    assert_eq!(scheduler.available_threads(), 1, "no slot leaked");
}

#[test]
fn deadline_sessions_stop_and_cotenants_hold_their_digests() {
    let slow = FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(4, 400)
        .with_vectors(256)
        .with_seed(5)
        .with_budget(JobBudget {
            deadline: Some(Duration::from_millis(60)),
            ..JobBudget::default()
        });
    let steady = quick_job(Method::Dcgwo, 33);
    let solo = solo_digest(&steady);

    let scheduler = Scheduler::new(SchedulerConfig::new(2)).expect("valid config");
    let slow_handle = scheduler.submit(slow).expect("admitted");
    let steady_handle = scheduler.submit(steady.clone()).expect("admitted");
    scheduler.drain();

    let outcome = slow_handle.result().expect("deadline still reports a best");
    assert_eq!(outcome.stop(), StopReason::DeadlineExpired);
    assert!(outcome.optimize.history.len() < 400);

    let outcome = steady_handle.result().expect("completed");
    let events: Vec<String> = steady_handle.poll_events().iter().map(event_key).collect();
    assert_eq!(
        digest(&outcome, events),
        solo,
        "a co-tenant's deadline leaked into a healthy session"
    );
    assert_eq!(scheduler.available_threads(), 2);
}

#[test]
fn admission_follows_priority_then_fifo() {
    let scheduler = Scheduler::new(SchedulerConfig::new(1)).expect("valid config");
    let blocker = scheduler
        .submit(
            FlowJob::benchmark(Benchmark::Int2float)
                .with_bound(0.05)
                .with_scale(4, 500)
                .with_vectors(256)
                .with_seed(1),
        )
        .expect("admitted");
    wait_for("blocker to hold the only slot", || {
        matches!(blocker.status(), SessionStatus::Running { .. })
    });

    let low = scheduler
        .submit(quick_job(Method::Dcgwo, 2).with_priority(0))
        .expect("admitted");
    wait_for("low-priority to enter the line", || {
        scheduler.waiting_sessions() == 1
    });
    let high = scheduler
        .submit(quick_job(Method::Dcgwo, 3).with_priority(9))
        .expect("admitted");
    wait_for("high-priority to enter the line", || {
        scheduler.waiting_sessions() == 2
    });

    blocker.cancel();
    scheduler.drain();

    assert_eq!(blocker.admission_index(), Some(0));
    assert_eq!(
        high.admission_index(),
        Some(1),
        "higher priority jumped the FIFO line"
    );
    assert_eq!(low.admission_index(), Some(2));
    assert_eq!(
        blocker.result().expect("best").stop(),
        StopReason::Cancelled
    );
    assert_eq!(high.status(), SessionStatus::Completed);
    assert_eq!(low.status(), SessionStatus::Completed);
}

#[test]
fn thread_over_asks_are_typed_errors() {
    assert_eq!(
        Scheduler::new(SchedulerConfig::new(0)).err(),
        Some(ServerError::NoWorkers)
    );
    assert_eq!(
        Scheduler::new(SchedulerConfig::new(4).with_session_cap(0)).err(),
        Some(ServerError::ZeroSessionCap)
    );

    let scheduler =
        Scheduler::new(SchedulerConfig::new(4).with_session_cap(2)).expect("valid config");
    assert_eq!(scheduler.lease_cap(), 2);

    let zero = quick_job(Method::Dcgwo, 1).with_threads(0);
    assert!(matches!(
        scheduler.submit(zero).unwrap_err(),
        ServerError::ZeroThreads { .. }
    ));
    let over = quick_job(Method::Dcgwo, 1).with_threads(3);
    assert_eq!(
        scheduler.submit(over).unwrap_err(),
        ServerError::ThreadsExceedLease {
            job: "Int2float".into(),
            requested: 3,
            lease_cap: 2,
        }
    );
    // Overflow-shaped requests take the same typed path.
    let huge = quick_job(Method::Dcgwo, 1).with_threads(usize::MAX);
    assert!(matches!(
        scheduler.submit(huge).unwrap_err(),
        ServerError::ThreadsExceedLease {
            requested: usize::MAX,
            ..
        }
    ));
    // A cap wider than the pool clamps to the pool instead of lying.
    let wide = Scheduler::new(SchedulerConfig::new(2).with_session_cap(100)).expect("valid");
    assert_eq!(wide.lease_cap(), 2);

    // An in-cap request is admitted and still matches its solo run.
    let job = quick_job(Method::Dcgwo, 41).with_threads(2);
    let solo = solo_digest(&job);
    let handle = scheduler.submit(job).expect("admitted");
    let outcome = handle.result().expect("completed");
    let events: Vec<String> = handle.poll_events().iter().map(event_key).collect();
    scheduler.drain();
    assert_eq!(digest(&outcome, events), solo);
}

#[test]
fn failures_and_panics_stay_contained() {
    let scheduler = Scheduler::new(SchedulerConfig::new(2)).expect("valid config");
    let steady = quick_job(Method::Hedals, 51);
    let solo = solo_digest(&steady);

    // A job whose Verilog does not parse fails with the typed error...
    let broken = scheduler
        .submit(
            FlowJob::verilog("broken", "module oops(")
                .with_bound(0.05)
                .with_vectors(256),
        )
        .expect("admission does not parse Verilog");
    // ...and a panicking tenant observer is contained on its thread.
    struct Bomb;
    impl Observer for Bomb {
        fn on_event(&mut self, event: &FlowEvent) {
            if matches!(event, FlowEvent::IterationStarted { .. }) {
                panic!("tenant observer exploded");
            }
        }
    }
    let bomb = scheduler
        .submit_observed(quick_job(Method::Dcgwo, 52), Bomb)
        .expect("admitted");
    let steady_handle = scheduler.submit(steady.clone()).expect("admitted");
    scheduler.drain();

    match broken.result() {
        Err(SessionError::Flow(e)) => {
            assert!(e.to_string().contains("Verilog"), "{e}");
        }
        other => panic!("expected a typed flow error, got {other:?}"),
    }
    assert_eq!(broken.status(), SessionStatus::Failed);

    match bomb.result() {
        Err(SessionError::Panicked(message)) => {
            assert!(message.contains("exploded"), "{message}");
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    assert_eq!(bomb.status(), SessionStatus::Panicked);

    let outcome = steady_handle.result().expect("completed");
    let events: Vec<String> = steady_handle.poll_events().iter().map(event_key).collect();
    assert_eq!(
        digest(&outcome, events),
        solo,
        "a co-tenant's failure/panic perturbed a healthy session"
    );
    assert_eq!(
        scheduler.available_threads(),
        scheduler.total_threads(),
        "failure or panic leaked pool slots"
    );
}

#[test]
fn manifest_and_jobs_round_trip_through_json() {
    let jobs = vec![
        quick_job(Method::Hedals, 7)
            .with_priority(3)
            .with_budget(JobBudget {
                max_iterations: Some(5),
                max_evaluations: Some(500),
                deadline: Some(Duration::from_millis(1500)),
            }),
        FlowJob::verilog(
            "inline",
            "module m(a, y); input a; output y; assign y = a; endmodule",
        )
        .with_bound(0.01)
        .with_threads(2)
        .with_area_con(77.5),
    ];
    let manifest = Manifest::new(jobs).with_total_threads(4);
    let text = manifest.to_json().to_string();
    let again = Manifest::parse(&text, &|path| Err(format!("no files in this test: {path}")))
        .expect("round-trip parses");
    assert_eq!(again, manifest);

    // Seeds are the determinism anchor: values past f64's exact-integer
    // range must survive the round-trip bit-for-bit (they travel as
    // JSON strings).
    let big_seed = Manifest::new(vec![quick_job(Method::Dcgwo, u64::MAX)]);
    let text = big_seed.to_json().to_string();
    let again = Manifest::parse(&text, &|_| Err("no".into())).expect("round-trip parses");
    assert_eq!(again.jobs[0].seed, u64::MAX);
    assert_eq!(again, big_seed);

    // Typed manifest rejections.
    let err = Manifest::parse("{", &|_| Err("no".into())).unwrap_err();
    assert!(err.to_string().contains("not valid JSON"), "{err}");
    let err = Manifest::parse(r#"{"jobs": []}"#, &|_| Err("no".into())).unwrap_err();
    assert!(err.to_string().contains("empty"), "{err}");
    let bad_method = r#"{"jobs": [{"circuit": "bench:Max16", "metric": "er",
                         "bound": 0.05, "method": "annealer"}]}"#;
    let err = Manifest::parse(bad_method, &|_| Err("no".into())).unwrap_err();
    assert!(
        err.to_string().contains("unknown method `annealer`"),
        "{err}"
    );
    let bad_bench = r#"{"jobs": [{"circuit": "bench:NoSuch", "metric": "er",
                        "bound": 0.05, "method": "dcgwo"}]}"#;
    let err = Manifest::parse(bad_bench, &|_| Err("no".into())).unwrap_err();
    assert!(
        err.to_string().contains("unknown benchmark `NoSuch`"),
        "{err}"
    );

    // Strict fields: a typo'd budget knob must not silently run an
    // unbudgeted job, and a zero pool budget must not silently become 1.
    let typo = r#"{"jobs": [{"circuit": "bench:Max16", "metric": "er",
                   "bound": 0.05, "method": "dcgwo", "deadline": 60000}]}"#;
    let err = Manifest::parse(typo, &|_| Err("no".into())).unwrap_err();
    assert!(
        err.to_string().contains("unknown field `deadline`"),
        "{err}"
    );
    let top = r#"{"total_thread": 4, "jobs": [{"circuit": "bench:Max16",
                  "metric": "er", "bound": 0.05, "method": "dcgwo"}]}"#;
    let err = Manifest::parse(top, &|_| Err("no".into())).unwrap_err();
    assert!(
        err.to_string()
            .contains("unknown top-level field `total_thread`"),
        "{err}"
    );
    let zero = r#"{"total_threads": 0, "jobs": [{"circuit": "bench:Max16",
                   "metric": "er", "bound": 0.05, "method": "dcgwo"}]}"#;
    let err = Manifest::parse(zero, &|_| Err("no".into())).unwrap_err();
    assert!(err.to_string().contains("at least 1 worker"), "{err}");
}

#[test]
fn manifest_rejects_empty_and_duplicate_names_with_typed_errors() {
    // Result records are keyed by job name downstream (shard merges,
    // post-mortems), so a manifest where two jobs share a name is
    // rejected at parse time — naming both offending positions — and an
    // empty manifest is a typed error rather than a zero-job run.
    let err = Manifest::parse(r#"{"jobs": []}"#, &|_| Err("no".into())).unwrap_err();
    assert!(matches!(err, ManifestError::Empty), "{err:?}");

    let dup = r#"{"jobs": [
        {"circuit": "bench:Int2float", "metric": "er", "bound": 0.05, "method": "dcgwo"},
        {"circuit": "bench:Max16", "name": "other", "metric": "er", "bound": 0.05,
         "method": "dcgwo"},
        {"circuit": "bench:Int2float", "metric": "er", "bound": 0.05, "method": "hedals"}
    ]}"#;
    let err = Manifest::parse(dup, &|_| Err("no".into())).unwrap_err();
    // Both defaulted to the circuit name `Int2float`: positions 0 and 2.
    match &err {
        ManifestError::DuplicateName {
            name,
            first,
            second,
        } => {
            assert_eq!(name, "Int2float");
            assert_eq!((*first, *second), (0, 2));
        }
        other => panic!("expected DuplicateName, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("jobs 0 and 2"), "{msg}");
    assert!(msg.contains("unique `name`"), "{msg}");

    // Explicit unique names fix it — `with_name` is the programmatic
    // spelling of the same knob.
    let named = r#"{"jobs": [
        {"circuit": "bench:Int2float", "name": "a", "metric": "er", "bound": 0.05,
         "method": "dcgwo"},
        {"circuit": "bench:Int2float", "name": "b", "metric": "er", "bound": 0.05,
         "method": "hedals"}
    ]}"#;
    let manifest = Manifest::parse(named, &|_| Err("no".into())).expect("unique names parse");
    assert_eq!(manifest.jobs[0].name, "a");
    assert_eq!(manifest.jobs[1].name, "b");
    let renamed = manifest.jobs[0].clone().with_name("c");
    assert_eq!(renamed.name, "c");

    // subset() keeps the selected jobs in the given order and carries
    // the batch-wide defaults — it is the shard sub-manifest primitive.
    let sub = manifest.subset(&[1]);
    assert_eq!(sub.jobs.len(), 1);
    assert_eq!(sub.jobs[0].name, "b");
    assert_eq!(sub.total_threads, manifest.total_threads);
}

fn tdals() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdals"))
}

#[test]
fn serve_batch_cli_output_is_byte_identical_across_pool_widths() {
    // The acceptance criterion's CLI face: the same manifest at
    // --total-threads 1 vs 4 produces byte-identical results files.
    let dir = std::env::temp_dir().join(format!("tdals-serve-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let manifest_path = dir.join("jobs.json");
    let manifest = r#"{
  "jobs": [
    {"circuit": "bench:Int2float", "name": "i2f-dcgwo", "metric": "er", "bound": 0.05,
     "method": "dcgwo", "population": 6, "iterations": 3, "vectors": 512, "seed": 11},
    {"circuit": "bench:Int2float", "name": "i2f-hedals", "metric": "er", "bound": 0.05,
     "method": "hedals", "iterations": 1, "vectors": 512, "seed": 7, "priority": 5,
     "threads": 2},
    {"circuit": "bench:Max16", "metric": "nmed", "bound": 0.0244,
     "method": "vaacs", "population": 6, "iterations": 2, "vectors": 512, "seed": 5,
     "max_evaluations": 60},
    {"circuit": "bench:Int2float", "name": "i2f-greedy", "metric": "er", "bound": 0.05,
     "method": "greedy", "iterations": 1, "vectors": 512, "seed": 3,
     "max_iterations": 4}
  ]
}"#;
    std::fs::write(&manifest_path, manifest).expect("write manifest");

    let run = |threads: &str, file: &str| -> String {
        let out_path = dir.join(file);
        let out = tdals()
            .args([
                "serve-batch",
                "--manifest",
                manifest_path.to_str().expect("utf8 path"),
                "--total-threads",
                threads,
                "--out",
                out_path.to_str().expect("utf8 path"),
            ])
            .output()
            .expect("run tdals serve-batch");
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&out_path).expect("results written")
    };
    // The second job's `threads: 2` hint also proves admission is
    // width-invariant: at --total-threads 1 the hint clamps to the pool
    // instead of rejecting the batch.
    let narrow = run("1", "results_t1.json");
    let wide = run("4", "results_t4.json");
    assert_eq!(narrow, wide, "results diverged across pool widths");
    assert!(narrow.contains("\"status\": \"completed\""));
    assert!(narrow.contains("\"schema\": 1"));
    std::fs::remove_dir_all(&dir).ok();
}

//! Wire-protocol acceptance suite for `tdals serve`.
//!
//! Three layers, sockets last:
//!
//! 1. **Codec** — golden frames for every request verb and event kind
//!    (the exact compact bytes are pinned, so an accidental field
//!    rename is a test failure, not a silent schema break), plus the
//!    framing error taxonomy (malformed, truncated, oversized).
//! 2. **Daemon verbs** — [`Daemon::handle`] is transport-free, so
//!    admission control, per-tenant quotas, drain, cancellation, and
//!    the byte-identity of daemon records with `serve-batch`'s are all
//!    exercised without a socket.
//! 3. **Sockets** — concurrent clients over real TCP: quota enforcement
//!    across connections, a mid-session disconnect leaking no slots,
//!    bad frames surviving on an aligned stream, oversized frames
//!    closing it.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::TcpStream;

use tdals::circuits::Benchmark;
use tdals::core::api::{FlowEvent, FnObserver, StopReason};
use tdals::core::{IterationStats, PostOptReport};
use tdals::server::{
    as_error, error_frame, event_from_json, event_to_json, read_frame, results_document,
    results_document_from_records, session_record_fields, Connection, Daemon, DaemonConfig,
    ErrorCode, FlowJob, FrameError, JobBudget, Request,
};
use tdals::sim::ErrorMetric;
use tdals_bench::json::Json;

fn quick_job(seed: u64) -> FlowJob {
    FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(4, 2)
        .with_vectors(256)
        .with_seed(seed)
}

/// A job that runs until cancelled: an iteration budget far beyond what
/// the tests ever let it finish.
fn long_job(seed: u64) -> FlowJob {
    FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(6, 100_000)
        .with_vectors(256)
        .with_seed(seed)
}

fn submit(job: &FlowJob, tenant: Option<&str>) -> Json {
    Request::Submit {
        job: job.clone(),
        tenant: tenant.map(str::to_owned),
    }
    .to_json()
}

fn code_of(frame: &Json) -> Option<&str> {
    as_error(frame).map(|(code, _)| code)
}

fn session_of(frame: &Json) -> u64 {
    frame
        .get("session")
        .and_then(Json::as_f64)
        .expect("reply carries a session id") as u64
}

// ---------------------------------------------------------------------
// 1. Codec
// ---------------------------------------------------------------------

#[test]
fn golden_request_frames_round_trip() {
    let cases: Vec<(Request, &str)> = vec![
        (
            Request::Status { session: 7 },
            r#"{"schema":1,"verb":"status","session":7}"#,
        ),
        (
            Request::Events { session: 7 },
            r#"{"schema":1,"verb":"events","session":7}"#,
        ),
        (
            Request::Result {
                session: 7,
                wait: false,
            },
            r#"{"schema":1,"verb":"result","session":7}"#,
        ),
        (
            Request::Result {
                session: 7,
                wait: true,
            },
            r#"{"schema":1,"verb":"result","session":7,"wait":true}"#,
        ),
        (
            Request::Cancel { session: 7 },
            r#"{"schema":1,"verb":"cancel","session":7}"#,
        ),
        (Request::Drain, r#"{"schema":1,"verb":"drain"}"#),
        (Request::Health, r#"{"schema":1,"verb":"health"}"#),
        (Request::Stats, r#"{"schema":1,"verb":"stats"}"#),
        (Request::Shutdown, r#"{"schema":1,"verb":"shutdown"}"#),
    ];
    for (request, golden) in cases {
        let frame = request.to_json();
        assert_eq!(frame.to_compact(), golden);
        assert_eq!(Request::from_json(&frame).expect("parses"), request);
    }
}

#[test]
fn golden_submit_frame_round_trips() {
    let request = Request::Submit {
        job: FlowJob::benchmark(Benchmark::Int2float).with_bound(0.05),
        tenant: Some("acme".into()),
    };
    let frame = request.to_json();
    assert_eq!(
        frame.to_compact(),
        r#"{"schema":1,"verb":"submit","job":{"name":"Int2float","circuit":"bench:Int2float","method":"dcgwo","metric":"er","bound":0.05,"population":30,"iterations":20,"vectors":4096,"seed":1,"priority":0},"tenant":"acme"}"#
    );
    assert_eq!(Request::from_json(&frame).expect("parses"), request);
}

#[test]
fn golden_event_frames_round_trip() {
    let cases: Vec<(FlowEvent, &str)> = vec![
        (
            FlowEvent::FlowStarted {
                optimizer: "DCGWO".into(),
                gates: 100,
                cpd_ori: 123.5,
                area_ori: 88.25,
                metric: ErrorMetric::ErrorRate,
                error_bound: 0.05,
            },
            r#"{"schema":1,"kind":"flow-started","optimizer":"DCGWO","gates":100,"cpd_ori":123.5,"area_ori":88.25,"metric":"er","error_bound":0.05}"#,
        ),
        (
            FlowEvent::IterationFinished {
                stats: IterationStats {
                    iteration: 3,
                    constraint: 0.025,
                    best_fitness: 0.75,
                    best_depth: 12,
                    best_area: 456.5,
                    feasible: 7,
                },
            },
            r#"{"schema":1,"kind":"iteration-finished","stats":{"iteration":3,"constraint":0.025,"best_fitness":0.75,"best_depth":12,"best_area":456.5,"feasible":7}}"#,
        ),
        (
            FlowEvent::OptimizeFinished {
                stop: StopReason::IterationLimit,
                evaluations: 1234,
            },
            r#"{"schema":1,"kind":"optimize-finished","stop":"iteration-limit","evaluations":1234}"#,
        ),
        (
            FlowEvent::PostOptFinished {
                report: PostOptReport {
                    gates_removed: 4,
                    cpd_before: 200.5,
                    cpd_after_sweep: 180.25,
                    cpd_final: 170.5,
                    area_final: 99.75,
                    sizing_moves: 2,
                },
            },
            r#"{"schema":1,"kind":"post-opt-finished","report":{"gates_removed":4,"cpd_before":200.5,"cpd_after_sweep":180.25,"cpd_final":170.5,"area_final":99.75,"sizing_moves":2}}"#,
        ),
        (
            FlowEvent::FlowFinished {
                ratio_cpd: 0.875,
                error: 0.0125,
                runtime_s: 1.5,
            },
            r#"{"schema":1,"kind":"flow-finished","ratio_cpd":0.875,"error":0.0125,"runtime_s":1.5}"#,
        ),
    ];
    for (event, golden) in cases {
        let frame = event_to_json(&event);
        assert_eq!(frame.to_compact(), golden);
        assert_eq!(event_from_json(&frame).expect("parses"), event);
    }
}

#[test]
fn every_stop_reason_survives_the_wire() {
    for stop in [
        StopReason::Completed,
        StopReason::IterationLimit,
        StopReason::EvaluationLimit,
        StopReason::DeadlineExpired,
        StopReason::Cancelled,
    ] {
        let frame = event_to_json(&FlowEvent::OptimizeFinished {
            stop,
            evaluations: 1,
        });
        assert_eq!(
            event_from_json(&frame).expect("parses"),
            FlowEvent::OptimizeFinished {
                stop,
                evaluations: 1
            }
        );
    }
}

#[test]
fn error_codes_are_a_closed_round_tripping_vocabulary() {
    for code in [
        ErrorCode::BadFrame,
        ErrorCode::OversizedFrame,
        ErrorCode::TruncatedFrame,
        ErrorCode::BadSchema,
        ErrorCode::BadRequest,
        ErrorCode::UnknownVerb,
        ErrorCode::UnknownSession,
        ErrorCode::QueueFull,
        ErrorCode::QuotaExceeded,
        ErrorCode::Draining,
        ErrorCode::Rejected,
    ] {
        assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
    }
    assert_eq!(ErrorCode::parse("not-a-code"), None);

    let frame = error_frame(ErrorCode::QueueFull, "try later");
    assert_eq!(
        frame.to_compact(),
        r#"{"schema":1,"error":"queue-full","message":"try later"}"#
    );
    assert_eq!(as_error(&frame), Some(("queue-full", "try later")));
}

#[test]
fn malformed_requests_get_typed_errors() {
    let cases: Vec<(&str, ErrorCode)> = vec![
        (r#"[1,2]"#, ErrorCode::BadFrame),
        (
            r#"{"schema":1,"verb":"status","sessionn":3}"#,
            ErrorCode::BadRequest,
        ),
        (r#"{"verb":"health"}"#, ErrorCode::BadSchema),
        (r#"{"schema":99,"verb":"health"}"#, ErrorCode::BadSchema),
        (
            r#"{"schema":1,"verb":"frobnicate"}"#,
            ErrorCode::UnknownVerb,
        ),
        (r#"{"schema":1,"verb":"status"}"#, ErrorCode::BadRequest),
        (r#"{"schema":1,"verb":"submit"}"#, ErrorCode::BadRequest),
        (
            r#"{"schema":1,"verb":"submit","job":{"name":"x","circuit":"/etc/passwd"}}"#,
            ErrorCode::BadRequest,
        ),
        (
            r#"{"schema":1,"verb":"submit","job":{"name":"x","circuit":"bench:Int2float"},"tenant":7}"#,
            ErrorCode::BadRequest,
        ),
        (
            r#"{"schema":1,"verb":"result","session":0,"wait":"yes"}"#,
            ErrorCode::BadRequest,
        ),
    ];
    for (text, expected) in cases {
        let frame = Json::parse(text).expect("test input is valid JSON");
        let err = Request::from_json(&frame).expect_err(text);
        assert_eq!(err.0, expected, "{text}: {}", err.1);
    }
}

#[test]
fn framing_errors_are_typed() {
    // Clean EOF between frames.
    let mut empty = Cursor::new(Vec::<u8>::new());
    assert_eq!(read_frame(&mut empty, 64).expect("clean eof"), None);

    // Two frames from one stream, then EOF.
    let mut two = Cursor::new(b"{\"a\":1}\n{\"b\":2}\n".to_vec());
    assert_eq!(
        read_frame(&mut two, 64).expect("frame 1").as_deref(),
        Some(r#"{"a":1}"#)
    );
    assert_eq!(
        read_frame(&mut two, 64).expect("frame 2").as_deref(),
        Some(r#"{"b":2}"#)
    );
    assert_eq!(read_frame(&mut two, 64).expect("clean eof"), None);

    // EOF mid-line is truncation, not silence.
    let mut cut = Cursor::new(b"{\"a\":".to_vec());
    assert_eq!(
        read_frame(&mut cut, 64),
        Err(FrameError::Truncated { bytes: 5 })
    );

    // A line past the limit is rejected before it is buffered whole.
    let mut big = Cursor::new(vec![b'x'; 1000]);
    assert!(matches!(
        read_frame(&mut big, 64),
        Err(FrameError::Oversized { limit: 64 })
    ));

    // Well-framed garbage is BadJson through a Connection (the stream
    // stays aligned, so the next frame still parses).
    let mut conn = Connection::new(Cursor::new(b"not json\n{\"ok\":true}\n".to_vec()));
    assert!(matches!(conn.receive(), Err(FrameError::BadJson(_))));
    assert_eq!(
        conn.receive().expect("aligned").map(|f| f.to_compact()),
        Some(r#"{"ok":true}"#.to_owned())
    );
}

// ---------------------------------------------------------------------
// 2. Daemon verbs, transport-free
// ---------------------------------------------------------------------

#[test]
fn daemon_record_is_byte_identical_to_serve_batch() {
    let jobs = [
        quick_job(11),
        quick_job(7).with_method(tdals::baselines::Method::Hedals),
    ];
    let daemon = Daemon::new(DaemonConfig::new(2)).expect("valid config");

    let ids: Vec<u64> = jobs
        .iter()
        .map(|job| {
            let reply = daemon.handle(&submit(job, None));
            assert_eq!(code_of(&reply), None, "{reply}");
            session_of(&reply)
        })
        .collect();

    // Reassemble the document the way `tdals submit` does: wire records
    // plus locally-known submission indices.
    let rows: Vec<Json> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let reply = daemon.handle(
                &Request::Result {
                    session: *id,
                    wait: true,
                }
                .to_json(),
            );
            assert_eq!(reply.get("done"), Some(&Json::Bool(true)));
            assert_eq!(
                reply.get("status").and_then(Json::as_str),
                Some("completed")
            );
            let mut members = vec![("job".to_owned(), Json::Num(i as f64))];
            let Some(Json::Obj(fields)) = reply.get("record").cloned() else {
                panic!("record is an object");
            };
            members.extend(fields);
            Json::Obj(members)
        })
        .collect();
    let via_daemon = results_document_from_records(rows).to_string();

    // The reference: the exact document `serve-batch` would write,
    // straight from solo runs (scheduler outcomes are bit-identical to
    // solo by the PR-5 contract this repo's server suite pins).
    let solo: Vec<Result<_, tdals::server::SessionError>> = jobs
        .iter()
        .map(|j| j.run_direct(1).map_err(tdals::server::SessionError::Flow))
        .collect();
    let reference = results_document(jobs.iter().zip(solo.iter())).to_string();
    assert_eq!(via_daemon, reference);
}

#[test]
fn daemon_streams_each_event_exactly_once() {
    let daemon = Daemon::new(DaemonConfig::new(1)).expect("valid config");
    let reply = daemon.handle(&submit(&quick_job(3), None));
    let id = session_of(&reply);
    daemon.handle(
        &Request::Result {
            session: id,
            wait: true,
        }
        .to_json(),
    );

    let mut seen = Vec::new();
    loop {
        let reply = daemon.handle(&Request::Events { session: id }.to_json());
        let Some(Json::Arr(events)) = reply.get("events") else {
            panic!("events is an array");
        };
        if events.is_empty() {
            break;
        }
        seen.extend(events.iter().cloned());
    }
    // The stream is intact (bracketed by the flow's start/finish events)
    // and a re-poll yields nothing: exactly-once delivery.
    assert_eq!(
        seen.first()
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("flow-started")
    );
    assert_eq!(
        seen.last()
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("flow-finished")
    );
    for frame in &seen {
        event_from_json(frame).expect("every streamed event decodes");
    }
    let reply = daemon.handle(&Request::Events { session: id }.to_json());
    assert_eq!(
        reply.get("events").map(|e| e.to_compact()),
        Some("[]".to_owned())
    );
}

/// Strips the one wall-clock field an event can carry
/// (`FlowFinished.runtime_s`) so two captures of the same deterministic
/// stream compare equal.
fn zero_runtime(frame: &Json) -> Json {
    let Json::Obj(members) = frame else {
        return frame.clone();
    };
    Json::Obj(
        members
            .iter()
            .map(|(k, v)| {
                if k == "runtime_s" {
                    (k.clone(), Json::Num(0.0))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    )
}

#[test]
fn late_client_drains_the_full_event_backlog_in_order() {
    // A client that first asks for events after the session already
    // finished — a shard supervisor reconnecting, a slow `submit` pump —
    // must receive the entire buffered history in emission order, not a
    // truncated tail. The golden order is a direct run observed by a
    // closure: the daemon routes the same engine's events through its
    // buffer, so backlog draining is capture-equality (modulo the one
    // wall-clock field).
    let job = quick_job(21);
    let daemon = Daemon::new(DaemonConfig::new(1)).expect("valid config");
    let reply = daemon.handle(&submit(&job, None));
    assert_eq!(code_of(&reply), None, "{reply}");
    let id = session_of(&reply);
    // Block on the result without ever polling events: the backlog
    // accumulates exactly as it would for a disconnected client.
    let reply = daemon.handle(
        &Request::Result {
            session: id,
            wait: true,
        }
        .to_json(),
    );
    assert_eq!(reply.get("done"), Some(&Json::Bool(true)));

    let mut streamed = Vec::new();
    loop {
        let reply = daemon.handle(&Request::Events { session: id }.to_json());
        let Some(Json::Arr(events)) = reply.get("events") else {
            panic!("events is an array");
        };
        if events.is_empty() {
            break;
        }
        streamed.extend(events.iter().map(zero_runtime));
    }

    let mut reference = Vec::new();
    let mut capture = FnObserver(|ev: &FlowEvent| reference.push(zero_runtime(&event_to_json(ev))));
    job.run_with(1, job.budget.to_budget(), &mut capture)
        .expect("reference run completes");

    assert!(!reference.is_empty(), "the flow emits events");
    assert_eq!(streamed, reference, "backlog is the full history, in order");
}

#[test]
fn daemon_enforces_tenant_quotas_and_recovers_on_cancel() {
    let daemon = Daemon::new(DaemonConfig::new(2).with_tenant_quota(1)).expect("valid config");

    let first = daemon.handle(&submit(&long_job(1), Some("acme")));
    assert_eq!(code_of(&first), None);
    let first_id = session_of(&first);

    // Same tenant, second live session: over quota.
    let over = daemon.handle(&submit(&long_job(2), Some("acme")));
    assert_eq!(code_of(&over), Some("quota-exceeded"));

    // The quota is per tenant, not global.
    let other = daemon.handle(&submit(&quick_job(3), Some("zeta")));
    assert_eq!(code_of(&other), None);

    // Cancelling the hog frees the quota.
    daemon.handle(&Request::Cancel { session: first_id }.to_json());
    let done = daemon.handle(
        &Request::Result {
            session: first_id,
            wait: true,
        }
        .to_json(),
    );
    assert_eq!(done.get("done"), Some(&Json::Bool(true)));
    let retry = daemon.handle(&submit(&quick_job(4), Some("acme")));
    assert_eq!(code_of(&retry), None, "{retry}");

    daemon.handle(&Request::Drain.to_json());
}

#[test]
fn daemon_bounds_live_sessions() {
    let daemon = Daemon::new(DaemonConfig::new(1).with_max_sessions(1)).expect("valid config");
    let first = daemon.handle(&submit(&long_job(1), None));
    assert_eq!(code_of(&first), None);
    let full = daemon.handle(&submit(&quick_job(2), None));
    assert_eq!(code_of(&full), Some("queue-full"));

    daemon.handle(
        &Request::Cancel {
            session: session_of(&first),
        }
        .to_json(),
    );
    daemon.handle(&Request::Drain.to_json());
    // After drain the finished session no longer counts against the cap
    // (but drain also closes admissions, so the next error changes).
    let draining = daemon.handle(&submit(&quick_job(3), None));
    assert_eq!(code_of(&draining), Some("draining"));
}

#[test]
fn daemon_drain_closes_admissions_but_keeps_serving_results() {
    let daemon = Daemon::new(DaemonConfig::new(2)).expect("valid config");
    let reply = daemon.handle(&submit(&quick_job(5), None));
    let id = session_of(&reply);

    let drained = daemon.handle(&Request::Drain.to_json());
    assert_eq!(
        drained.get("ok").and_then(Json::as_str),
        Some("drained"),
        "{drained}"
    );

    let rejected = daemon.handle(&submit(&quick_job(6), None));
    assert_eq!(code_of(&rejected), Some("draining"));

    // Results, status, and events for pre-drain sessions still serve.
    let result = daemon.handle(
        &Request::Result {
            session: id,
            wait: false,
        }
        .to_json(),
    );
    assert_eq!(result.get("done"), Some(&Json::Bool(true)));
    let status = daemon.handle(&Request::Status { session: id }.to_json());
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("completed")
    );

    let health = daemon.handle(&Request::Health.to_json());
    assert_eq!(health.get("draining"), Some(&Json::Bool(true)));
}

#[test]
fn daemon_health_reports_slots_sessions_and_tenants() {
    let daemon = Daemon::new(DaemonConfig::new(2)).expect("valid config");
    let idle = daemon.handle(&Request::Health.to_json());
    assert_eq!(code_of(&idle), None);
    let slots = idle.get("slots").expect("slots object");
    assert_eq!(slots.get("total").and_then(Json::as_f64), Some(2.0));
    assert_eq!(slots.get("available").and_then(Json::as_f64), Some(2.0));

    let reply = daemon.handle(&submit(&long_job(1), Some("acme")));
    let id = session_of(&reply);
    let busy = daemon.handle(&Request::Health.to_json());
    let tenants = busy.get("tenants").expect("tenants object");
    assert_eq!(tenants.get("acme").and_then(Json::as_f64), Some(1.0));

    daemon.handle(&Request::Cancel { session: id }.to_json());
    daemon.handle(&Request::Drain.to_json());
    let settled = daemon.handle(&Request::Health.to_json());
    let slots = settled.get("slots").expect("slots object");
    assert_eq!(
        slots.get("available").and_then(Json::as_f64),
        Some(2.0),
        "all slots return after drain: {settled}"
    );
    assert_eq!(
        settled.get("tenants").map(|t| t.to_compact()),
        Some("{}".to_owned()),
        "no live sessions, no live tenants"
    );
}

#[test]
fn daemon_stats_reports_registry_sessions_and_queue() {
    let daemon = Daemon::new(DaemonConfig::new(1)).expect("valid config");
    let reply = daemon.handle(&submit(&quick_job(13), None));
    let id = session_of(&reply);
    let done = daemon.handle(
        &Request::Result {
            session: id,
            wait: true,
        }
        .to_json(),
    );
    assert_eq!(done.get("done"), Some(&Json::Bool(true)));

    let stats = daemon.handle(&Request::Stats.to_json());
    assert_eq!(code_of(&stats), None, "{stats}");
    assert_eq!(stats.get("ok").and_then(Json::as_str), Some("stats"));

    // The registry is process-wide, so counters only ever grow across
    // tests in this binary — assert floors, not exact values.
    let counter = |name: &str| {
        stats
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("counter {name} present: {stats}"))
    };
    assert!(counter("evaluations") > 0.0, "the flow evaluated mutants");
    assert!(counter("sessions_reaped") >= 1.0, "stats reaps first");

    let sessions = stats.get("sessions").expect("sessions tally");
    assert!(
        sessions.get("completed").and_then(Json::as_f64) >= Some(1.0),
        "{stats}"
    );
    assert!(
        stats.get("queue_depth").and_then(Json::as_f64).is_some(),
        "{stats}"
    );
    assert!(stats.get("tenants").is_some(), "{stats}");
}

#[test]
fn stats_against_an_old_daemon_degrades_to_unknown_verb() {
    // A schema-1 daemon built before the stats verb answers it with a
    // typed unknown-verb error (not a schema break or a hangup) — the
    // vocabulary it advertises is how a new client learns what happened.
    let frame = Json::parse(r#"{"schema":1,"verb":"stats"}"#).expect("valid JSON");
    assert_eq!(Request::from_json(&frame).expect("parses"), Request::Stats);

    let (code, message) = {
        let unknown = Json::parse(r#"{"schema":1,"verb":"frobnicate"}"#).expect("valid JSON");
        Request::from_json(&unknown).expect_err("unknown verb")
    };
    assert_eq!(code, ErrorCode::UnknownVerb);
    assert!(
        message.contains("stats"),
        "the advertised verb list names stats: {message}"
    );
}

#[test]
fn daemon_rejects_unknown_sessions_and_inadmissible_jobs() {
    let daemon = Daemon::new(DaemonConfig::new(1)).expect("valid config");
    let reply = daemon.handle(&Request::Status { session: 99 }.to_json());
    assert_eq!(code_of(&reply), Some("unknown-session"));

    // threads: 0 flows through to the scheduler's typed rejection.
    let zero = daemon.handle(&submit(&quick_job(1).with_threads(0), None));
    assert_eq!(code_of(&zero), Some("rejected"));
    assert!(
        as_error(&zero)
            .expect("error frame")
            .1
            .contains("0 worker threads"),
        "{zero}"
    );

    // A thread over-ask is clamped, not rejected: the same manifest is
    // admissible on any daemon size.
    let clamped = daemon.handle(&submit(&quick_job(2).with_threads(64), None));
    assert_eq!(code_of(&clamped), None, "{clamped}");
    daemon.handle(&Request::Drain.to_json());
}

// ---------------------------------------------------------------------
// 3. Sockets: concurrent clients over TCP
// ---------------------------------------------------------------------

fn start_daemon(config: DaemonConfig) -> (String, std::thread::JoinHandle<()>) {
    let daemon = Daemon::new(config).expect("valid config");
    let listener = tdals::server::Listener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let spec = listener.local_spec();
    let handle = std::thread::spawn(move || daemon.serve(listener).expect("serve loop"));
    (spec, handle)
}

fn client(spec: &str) -> Connection<tdals::server::Stream> {
    Connection::new(tdals::server::connect(spec).expect("connect"))
}

fn call(conn: &mut Connection<tdals::server::Stream>, request: &Request) -> Json {
    conn.send(&request.to_json()).expect("send");
    conn.receive().expect("receive").expect("daemon replied")
}

#[test]
fn socket_disconnect_leaks_no_slots_and_quota_spans_connections() {
    let (spec, server) = start_daemon(DaemonConfig::new(2).with_tenant_quota(1));

    // Client 1 submits a long-running job, then vanishes mid-session.
    let first_id = {
        let mut conn = client(&spec);
        let reply = call(
            &mut conn,
            &Request::Submit {
                job: long_job(1),
                tenant: Some("acme".into()),
            },
        );
        assert_eq!(code_of(&reply), None, "{reply}");
        session_of(&reply)
        // conn drops here: an abrupt disconnect.
    };

    // Client 2, same tenant, different connection: the quota still
    // counts the orphaned session — per-tenant state is daemon-wide,
    // not per-connection.
    let mut conn = client(&spec);
    let over = call(
        &mut conn,
        &Request::Submit {
            job: long_job(2),
            tenant: Some("acme".into()),
        },
    );
    assert_eq!(code_of(&over), Some("quota-exceeded"));

    // The disconnect cancelled nothing: the session is still live and
    // any connection can adopt it by id.
    call(&mut conn, &Request::Cancel { session: first_id });
    let done = call(
        &mut conn,
        &Request::Result {
            session: first_id,
            wait: true,
        },
    );
    assert_eq!(done.get("done"), Some(&Json::Bool(true)));

    // No slot leaked: with the session settled, the pool is whole.
    let drained = call(&mut conn, &Request::Drain);
    assert_eq!(code_of(&drained), None);
    let health = call(&mut conn, &Request::Health);
    let slots = health.get("slots").expect("slots object");
    assert_eq!(
        slots.get("available").and_then(Json::as_f64),
        Some(2.0),
        "{health}"
    );

    let bye = call(&mut conn, &Request::Shutdown);
    assert_eq!(code_of(&bye), None);
    drop(conn);
    server.join().expect("serve thread exits cleanly");
}

#[test]
fn socket_bad_frames_survive_oversized_frames_close() {
    let (spec, server) = start_daemon(DaemonConfig::new(1).with_max_frame_len(256));

    // A malformed line gets a typed error and the connection survives:
    // the next (valid) frame on the same stream is answered.
    {
        let stream = TcpStream::connect(&spec).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"this is not json\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let reply = Json::parse(line.trim_end()).expect("error frame parses");
        assert_eq!(code_of(&reply), Some("bad-frame"));

        writer
            .write_all(format!("{}\n", Request::Health.to_json().compact()).as_bytes())
            .expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        let reply = Json::parse(line.trim_end()).expect("health frame parses");
        assert_eq!(reply.get("ok").and_then(Json::as_str), Some("health"));
    }

    // An oversized line cannot be resynchronized: one typed error, then
    // the daemon closes the connection (EOF).
    {
        let stream = TcpStream::connect(&spec).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut giant = vec![b'{'; 1000];
        giant.push(b'\n');
        writer.write_all(&giant).expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let reply = Json::parse(line.trim_end()).expect("error frame parses");
        assert_eq!(code_of(&reply), Some("oversized-frame"));
        line.clear();
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
    }

    let mut conn = client(&spec);
    let bye = call(&mut conn, &Request::Shutdown);
    assert_eq!(code_of(&bye), None);
    drop(conn);
    server.join().expect("serve thread exits cleanly");
}

#[test]
fn socket_submit_status_events_result_full_session() {
    let (spec, server) = start_daemon(DaemonConfig::new(2));
    let mut conn = client(&spec);

    let job = quick_job(9).with_budget(JobBudget {
        max_iterations: Some(2),
        ..JobBudget::default()
    });
    let reply = call(
        &mut conn,
        &Request::Submit {
            job: job.clone(),
            tenant: None,
        },
    );
    assert_eq!(reply.get("ok").and_then(Json::as_str), Some("submitted"));
    let id = session_of(&reply);
    assert_eq!(reply.get("name").and_then(Json::as_str), Some("Int2float"));

    let result = call(
        &mut conn,
        &Request::Result {
            session: id,
            wait: true,
        },
    );
    assert_eq!(result.get("done"), Some(&Json::Bool(true)));
    let Some(Json::Obj(fields)) = result.get("record").cloned() else {
        panic!("record is an object");
    };
    // The wire record is exactly the serve-batch record body.
    let solo: Result<_, tdals::server::SessionError> = Ok(job.run_direct(1).expect("valid job"));
    assert_eq!(
        Json::Obj(fields).to_compact(),
        Json::Obj(session_record_fields(&job, &solo)).to_compact()
    );

    let status = call(&mut conn, &Request::Status { session: id });
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("completed")
    );
    let events = call(&mut conn, &Request::Events { session: id });
    let Some(Json::Arr(frames)) = events.get("events") else {
        panic!("events is an array");
    };
    assert!(!frames.is_empty(), "the finished session's stream flushes");

    // Stats over the same socket: the registry saw this job's work.
    let stats = call(&mut conn, &Request::Stats);
    assert_eq!(stats.get("ok").and_then(Json::as_str), Some("stats"));
    assert!(
        stats
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("evaluations"))
            .and_then(Json::as_f64)
            > Some(0.0),
        "{stats}"
    );

    let bye = call(&mut conn, &Request::Shutdown);
    assert_eq!(code_of(&bye), None);
    drop(conn);
    server.join().expect("serve thread exits cleanly");
}

//! Observability acceptance suite.
//!
//! Two halves:
//!
//! 1. **Registry** — the sharded counters and histograms lose nothing
//!    under concurrent writers (the scheduler's workers hammer them
//!    from many threads at once).
//! 2. **Tracing** — a traced flow of *every* optimizer method emits the
//!    flow → phase → iteration span hierarchy, and the serialized
//!    document is valid Chrome trace-event JSON with monotone,
//!    properly-nested timestamps.
//!
//! The trace recorder is process-global, so everything trace-shaped
//! lives in one `#[test]` — Rust runs the tests of one binary
//! concurrently, and a second enable/drain would race this one.

use tdals::baselines::ALL_METHODS;
use tdals::circuits::Benchmark;
use tdals::obs::metrics::{Counter, Histogram};
use tdals::obs::trace;
use tdals::server::FlowJob;
use tdals_bench::json::Json;
use tdals_bench::obs_report::trace_to_json;

#[test]
fn counters_and_histograms_lose_nothing_under_concurrent_writers() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    // Private instances, not the process registry: other tests in this
    // binary increment the global counters, so only a counter this test
    // owns can be asserted *exactly*.
    let counter = Counter::new();
    let hist = Histogram::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for i in 0..PER_THREAD {
                    counter.incr();
                    hist.record(i & 1023);
                }
            });
        }
    });

    assert_eq!(counter.get(), THREADS * PER_THREAD);
    let snap = hist.snapshot("contended");
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let expected_sum: u64 = (0..PER_THREAD).map(|i| i & 1023).sum::<u64>() * THREADS;
    assert_eq!(snap.sum, expected_sum);
    let bucket_total: u64 = snap.buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(bucket_total, THREADS * PER_THREAD, "every record bucketed");
}

fn traced_job(method: tdals::baselines::Method) -> FlowJob {
    FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(4, 2)
        .with_vectors(256)
        .with_seed(5)
        .with_method(method)
}

/// The span records of one category, sorted by start time.
fn of_cat<'r>(records: &'r [trace::SpanRecord], cat: &str) -> Vec<&'r trace::SpanRecord> {
    let mut spans: Vec<_> = records.iter().filter(|r| r.cat == cat).collect();
    spans.sort_by_key(|r| r.ts_us);
    spans
}

/// `inner` lies entirely within `outer`'s interval.
fn nested(inner: &trace::SpanRecord, outer: &trace::SpanRecord) -> bool {
    outer.ts_us <= inner.ts_us && inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us
}

#[test]
fn traced_flows_nest_spans_and_serialize_to_chrome_json() {
    trace::enable(16 * 1024);
    for method in ALL_METHODS {
        traced_job(method).run_direct(1).expect("traced flow runs");
    }
    let records = trace::drain();
    let dropped = trace::dropped();
    trace::disable();
    assert_eq!(dropped, 0, "the ring was sized for the workload");

    // One flow span per method, non-overlapping and in submission order.
    let flows = of_cat(&records, trace::cat::FLOW);
    assert_eq!(flows.len(), ALL_METHODS.len(), "one flow span per method");
    for pair in flows.windows(2) {
        assert!(
            pair[0].ts_us + pair[0].dur_us <= pair[1].ts_us,
            "sequential flows do not overlap: {} vs {}",
            pair[0].name,
            pair[1].name
        );
    }

    // Every flow contains the three phases in order, and at least one
    // iteration span inside its optimize phase.
    let phases = of_cat(&records, trace::cat::PHASE);
    let iterations = of_cat(&records, trace::cat::ITERATION);
    for flow in &flows {
        let inside: Vec<_> = phases.iter().filter(|p| nested(p, flow)).collect();
        let names: Vec<&str> = inside.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["setup", "optimize", "post-opt"],
            "{}: phases present, ordered, and non-interleaved",
            flow.name
        );
        let optimize = inside[1];
        let iters = iterations.iter().filter(|i| nested(i, optimize)).count();
        assert!(iters > 0, "{}: iteration spans inside optimize", flow.name);
    }
    // Iteration spans never leak outside an optimize phase.
    for iter in &iterations {
        assert!(
            phases
                .iter()
                .any(|p| p.name == "optimize" && nested(iter, p)),
            "{} is inside an optimize phase",
            iter.name
        );
    }

    // The serialized document is valid Chrome trace-event JSON: parse
    // it back with the same codec the tooling uses and check the
    // contract fields event by event.
    let doc = trace_to_json(&records, dropped);
    let parsed = Json::parse(&doc.to_string()).expect("document round-trips");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), records.len(), "every span becomes an event");
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(event.get("cat").and_then(Json::as_str).is_some());
        for field in ["ts", "dur", "pid", "tid"] {
            assert!(
                event.get(field).and_then(Json::as_f64).is_some(),
                "complete event carries {field}: {event}"
            );
        }
    }
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("dropped_spans"))
            .and_then(Json::as_f64),
        Some(0.0)
    );
}

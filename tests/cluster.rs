//! Acceptance suite for the shard coordinator (`tdals::cluster` /
//! `tdals shard-batch`).
//!
//! The headline contract: for any shard count and either worker mode,
//! the merged results file is **byte-identical** to what
//! `tdals serve-batch` writes for the unsharded manifest. Everything
//! else here defends the pieces that contract leans on: plan
//! stability, shard-map validation, merge invariants, crash-restart
//! convergence, and the typed dial errors.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use tdals::circuits::Benchmark;
use tdals::cluster::{merge, plan, ClusterError, ShardPlan, ShardPolicy};
use tdals::server::{FlowJob, Manifest};
use tdals_bench::json::Json;

fn quick_job(seed: u64) -> FlowJob {
    FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(4, 1)
        .with_vectors(256)
        .with_seed(seed)
        .with_name(format!("job-{seed}"))
}

fn five_jobs() -> Manifest {
    Manifest::new([3u64, 5, 7, 11, 13].map(quick_job).to_vec())
}

/// The five-job manifest as `tdals` CLI input (unique names are
/// mandatory since duplicate-name rejection landed).
const CLI_MANIFEST: &str = r#"{
  "jobs": [
    {"circuit": "bench:Int2float", "name": "i2f-a", "metric": "er", "bound": 0.05,
     "method": "dcgwo", "population": 4, "iterations": 1, "vectors": 256, "seed": 3},
    {"circuit": "bench:Int2float", "name": "i2f-b", "metric": "er", "bound": 0.05,
     "method": "dcgwo", "population": 4, "iterations": 1, "vectors": 256, "seed": 5},
    {"circuit": "bench:Max16", "name": "max-a", "metric": "nmed", "bound": 0.0244,
     "method": "hedals", "iterations": 1, "vectors": 256, "seed": 7},
    {"circuit": "bench:Int2float", "name": "i2f-c", "metric": "er", "bound": 0.05,
     "method": "greedy", "iterations": 1, "vectors": 256, "seed": 11,
     "max_iterations": 3},
    {"circuit": "bench:Int2float", "name": "i2f-d", "metric": "er", "bound": 0.05,
     "method": "dcgwo", "population": 4, "iterations": 1, "vectors": 256, "seed": 13}
  ]
}"#;

fn tdals() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdals"))
}

// ---------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------

#[test]
fn round_robin_deals_indices_and_clamps_to_job_count() {
    let manifest = five_jobs();
    let p = plan(&manifest, 2, ShardPolicy::RoundRobin).expect("plannable");
    assert_eq!(p.shard_count(), 2);
    assert_eq!(p.jobs_of(0), &[0, 2, 4]);
    assert_eq!(p.jobs_of(1), &[1, 3]);

    // More shards than jobs: the effective count clamps, because an
    // empty shard would mean a worker running an empty manifest.
    let p = plan(&manifest, 9, ShardPolicy::RoundRobin).expect("plannable");
    assert_eq!(p.shard_count(), 5);
    for s in 0..5 {
        assert_eq!(p.jobs_of(s), &[s]);
    }

    // The sub-manifest is the assigned jobs in manifest-relative order.
    let p = plan(&manifest, 2, ShardPolicy::RoundRobin).expect("plannable");
    let sub = p.manifest_for(&manifest, 0);
    let names: Vec<&str> = sub.jobs.iter().map(|j| j.name.as_str()).collect();
    assert_eq!(names, ["job-3", "job-7", "job-13"]);

    assert!(matches!(
        plan(&manifest, 0, ShardPolicy::RoundRobin),
        Err(ClusterError::Plan { .. })
    ));
}

#[test]
fn size_weighted_balances_cost_deterministically() {
    // Weights scale with population × iterations × vectors: one heavy
    // job (index 0) and four light ones onto 2 shards must isolate the
    // heavy job via LPT.
    let mut jobs = vec![quick_job(3)
        .with_scale(4, 100) // 100× the iterations of its peers
        .with_name("heavy".to_owned())];
    jobs.extend([5u64, 7, 11, 13].map(quick_job));
    let manifest = Manifest::new(jobs);
    let p = plan(&manifest, 2, ShardPolicy::SizeWeighted).expect("plannable");
    assert_eq!(p.jobs_of(0), &[0], "heavy job gets its own shard");
    assert_eq!(p.jobs_of(1), &[1, 2, 3, 4]);

    // Deterministic: planning twice yields the same assignment.
    let again = plan(&manifest, 2, ShardPolicy::SizeWeighted).expect("plannable");
    assert_eq!(p, again);
}

#[test]
fn shard_map_round_trips_and_rejects_broken_partitions() {
    let manifest = five_jobs();
    let p = plan(&manifest, 3, ShardPolicy::SizeWeighted).expect("plannable");
    let doc = p.to_json();
    let parsed = ShardPlan::from_json(&doc).expect("round-trips");
    assert_eq!(p, parsed);
    // The document pins its schema and policy spelling.
    assert_eq!(doc.get("schema").and_then(Json::as_uint), Some(1));
    assert_eq!(
        doc.get("policy").and_then(Json::as_str),
        Some("size-weighted")
    );

    let reject = |text: &str, needle: &str| {
        let doc = Json::parse(text).expect("valid JSON");
        let err = ShardPlan::from_json(&doc).expect_err(text);
        assert!(err.to_string().contains(needle), "{text}: {err}");
    };
    reject(
        r#"{"schema": 2, "policy": "round-robin", "jobs": 1, "shards": [[0]]}"#,
        "schema 2",
    );
    reject(
        r#"{"schema": 1, "policy": "by-vibes", "jobs": 1, "shards": [[0]]}"#,
        "unknown shard policy",
    );
    reject(
        r#"{"schema": 1, "policy": "round-robin", "jobs": 2, "shards": [[0], [0]]}"#,
        "assigned to two shards",
    );
    reject(
        r#"{"schema": 1, "policy": "round-robin", "jobs": 2, "shards": [[0]]}"#,
        "assigned to no shard",
    );
    reject(
        r#"{"schema": 1, "policy": "round-robin", "jobs": 2, "shards": [[1, 0]]}"#,
        "not ascending",
    );
    reject(
        r#"{"schema": 1, "policy": "round-robin", "jobs": 2, "shards": [[], [0, 1]]}"#,
        "empty",
    );
    reject(
        r#"{"schema": 1, "policy": "round-robin", "jobs": 1, "shards": [[0, 5]]}"#,
        "references job 5",
    );
}

// ---------------------------------------------------------------------
// Merge invariants (fabricated shard docs — no flows run)
// ---------------------------------------------------------------------

#[test]
fn merge_rejects_count_schema_and_index_violations() {
    let manifest = five_jobs();
    let p = plan(&manifest, 2, ShardPolicy::RoundRobin).expect("plannable");
    let record =
        |local: usize| format!(r#"{{"job": {local}, "name": "n{local}", "status": "completed"}}"#);
    let doc = |locals: &[usize]| {
        let rows: Vec<String> = locals.iter().map(|&l| record(l)).collect();
        format!("{{\"schema\": 1, \"results\": [{}]}}\n", rows.join(", "))
    };

    // One doc for a two-shard plan.
    let err = merge(&p, &[doc(&[0, 1, 2])]).expect_err("count mismatch");
    assert!(err.to_string().contains("1 shard document(s)"), "{err}");

    // Wrong schema.
    let bad_schema = doc(&[0, 1, 2]).replace("\"schema\": 1", "\"schema\": 9");
    let err = merge(&p, &[bad_schema, doc(&[0, 1])]).expect_err("schema");
    assert!(err.to_string().contains("schema"), "{err}");

    // A shard that lost a record.
    let err = merge(&p, &[doc(&[0, 1]), doc(&[0, 1])]).expect_err("short shard");
    assert!(err.to_string().contains("2 record(s) for 3"), "{err}");

    // A worker that reordered its records: local indices must equal
    // positions exactly.
    let err = merge(&p, &[doc(&[0, 2, 1]), doc(&[0, 1])]).expect_err("reorder");
    assert!(err.to_string().contains("carries job index"), "{err}");

    // The good case stitches global indices back in manifest order.
    let merged = merge(&p, &[doc(&[0, 1, 2]), doc(&[0, 1])]).expect("merges");
    let parsed = Json::parse(&merged).expect("valid JSON");
    let indices: Vec<u64> = parsed
        .get("results")
        .and_then(Json::as_array)
        .expect("results array")
        .iter()
        .map(|r| r.get("job").and_then(Json::as_uint).expect("job index"))
        .collect();
    assert_eq!(indices, [0, 1, 2, 3, 4]);
    // Shard 0 held globals {0,2,4}, shard 1 {1,3}: spot-check the
    // rewrite by the names the fabricated records carried.
    let names: Vec<&str> = parsed
        .get("results")
        .and_then(Json::as_array)
        .expect("results array")
        .iter()
        .map(|r| r.get("name").and_then(Json::as_str).expect("name"))
        .collect();
    assert_eq!(names, ["n0", "n0", "n1", "n1", "n2"]);
}

// ---------------------------------------------------------------------
// The headline: CLI byte-identity, mode A (spawned children)
// ---------------------------------------------------------------------

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tdals-cluster-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write_manifest(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("jobs.json");
    std::fs::write(&path, CLI_MANIFEST).expect("write manifest");
    path
}

fn run_serve_batch(manifest: &std::path::Path, out: &std::path::Path) -> String {
    let run = tdals()
        .args([
            "serve-batch",
            "--manifest",
            manifest.to_str().expect("utf8"),
            "--total-threads",
            "2",
            "--out",
            out.to_str().expect("utf8"),
        ])
        .output()
        .expect("run tdals serve-batch");
    assert!(
        run.status.success(),
        "serve-batch: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    std::fs::read_to_string(out).expect("results written")
}

#[test]
fn shard_batch_children_are_byte_identical_to_serve_batch() {
    let dir = scratch_dir("modea");
    let manifest = write_manifest(&dir);
    let solo = run_serve_batch(&manifest, &dir.join("solo.json"));

    for shards in ["1", "2", "3"] {
        let out = dir.join(format!("sharded{shards}.json"));
        let map = dir.join(format!("map{shards}.json"));
        let run = tdals()
            .args([
                "shard-batch",
                "--manifest",
                manifest.to_str().expect("utf8"),
                "--shards",
                shards,
                "--total-threads",
                "2",
                "--shard-map",
                map.to_str().expect("utf8"),
                "--out",
                out.to_str().expect("utf8"),
            ])
            .output()
            .expect("run tdals shard-batch");
        assert!(
            run.status.success(),
            "--shards {shards}: {}",
            String::from_utf8_lossy(&run.stderr)
        );
        let sharded = std::fs::read_to_string(&out).expect("results written");
        assert_eq!(sharded, solo, "--shards {shards} diverged from serve-batch");
        // The recorded shard map parses and covers the manifest.
        let map_doc =
            Json::parse(&std::fs::read_to_string(&map).expect("map written")).expect("map is JSON");
        let parsed = ShardPlan::from_json(&map_doc).expect("map validates");
        assert_eq!(parsed.job_count(), 5);
    }

    // The size-weighted policy must converge to the same bytes too —
    // assignment changes, results don't.
    let out = dir.join("weighted.json");
    let run = tdals()
        .args([
            "shard-batch",
            "--manifest",
            manifest.to_str().expect("utf8"),
            "--shards",
            "2",
            "--policy",
            "size-weighted",
            "--total-threads",
            "2",
            "--out",
            out.to_str().expect("utf8"),
        ])
        .output()
        .expect("run tdals shard-batch");
    assert!(
        run.status.success(),
        "size-weighted: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert_eq!(std::fs::read_to_string(&out).expect("written"), solo);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_child_restarts_and_still_converges() {
    // Kill shard 1's first child right after spawn (the supervisor's
    // own crash hook): the bounded restart re-runs the same shard
    // manifest, and seed-driven determinism makes the merged file
    // byte-identical anyway.
    let dir = scratch_dir("crash");
    let manifest = write_manifest(&dir);
    let solo = run_serve_batch(&manifest, &dir.join("solo.json"));

    let out = dir.join("crashed.json");
    let run = tdals()
        .args([
            "shard-batch",
            "--manifest",
            manifest.to_str().expect("utf8"),
            "--shards",
            "3",
            "--total-threads",
            "2",
            "--out",
            out.to_str().expect("utf8"),
        ])
        .env("TDALS_CLUSTER_CRASH_SHARD", "1")
        .output()
        .expect("run tdals shard-batch");
    assert!(
        run.status.success(),
        "crash-restart run: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&out).expect("written"),
        solo,
        "restart diverged from serve-batch"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Mode B: driving running daemons
// ---------------------------------------------------------------------

/// Spawns `tdals serve` on an ephemeral port and parses the bound
/// address from its banner line.
fn spawn_daemon() -> (Child, String) {
    let mut child = tdals()
        .args(["serve", "--listen", "127.0.0.1:0", "--total-threads", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tdals serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let banner = loop {
        match lines.next() {
            Some(Ok(line)) if line.contains("listening on ") => break line,
            Some(Ok(_)) => continue,
            other => panic!("daemon banner never arrived: {other:?}"),
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    let spec = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(" with").next())
        .expect("banner names the address")
        .to_owned();
    (child, spec)
}

#[test]
fn shard_batch_daemons_are_byte_identical_to_serve_batch() {
    let dir = scratch_dir("modeb");
    let manifest = write_manifest(&dir);
    let solo = run_serve_batch(&manifest, &dir.join("solo.json"));

    let (mut d1, spec1) = spawn_daemon();
    let (mut d2, spec2) = spawn_daemon();
    let out = dir.join("daemons.json");
    let run = tdals()
        .args([
            "shard-batch",
            "--manifest",
            manifest.to_str().expect("utf8"),
            "--connect",
            &format!("{spec1},{spec2}"),
            "--out",
            out.to_str().expect("utf8"),
        ])
        .output()
        .expect("run tdals shard-batch");
    let stderr = String::from_utf8_lossy(&run.stderr);
    d1.kill().ok();
    d2.kill().ok();
    d1.wait().ok();
    d2.wait().ok();
    assert!(run.status.success(), "mode B: {stderr}");
    // --shards defaulted to the daemon count.
    assert!(stderr.contains("over 2 shard(s)"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&out).expect("written"),
        solo,
        "daemon-backed run diverged from serve-batch"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Typed dial errors (`submit --retry` satellite)
// ---------------------------------------------------------------------

#[test]
fn submit_fails_fast_with_typed_connection_refused() {
    // Default --retry is 0: one attempt, the typed taxonomy names the
    // spec and the attempt count, and nothing hangs waiting for a
    // daemon that will never come.
    let dir = scratch_dir("refused");
    let manifest = write_manifest(&dir);
    let run = tdals()
        .args([
            "submit",
            "--connect",
            "127.0.0.1:1", // reserved port: nothing listens here
            "--manifest",
            manifest.to_str().expect("utf8"),
        ])
        .output()
        .expect("run tdals submit");
    assert!(!run.status.success(), "dial must fail");
    let err = String::from_utf8_lossy(&run.stderr);
    assert!(err.contains("connection-refused"), "{err}");
    assert!(err.contains("127.0.0.1:1"), "{err}");
    assert!(err.contains("after 1 attempt(s)"), "{err}");

    // --retry widens the attempt budget (still refused, more attempts).
    let run = tdals()
        .args([
            "submit",
            "--connect",
            "127.0.0.1:1",
            "--retry",
            "2",
            "--manifest",
            manifest.to_str().expect("utf8"),
        ])
        .output()
        .expect("run tdals submit");
    assert!(!run.status.success(), "dial must fail");
    let err = String::from_utf8_lossy(&run.stderr);
    assert!(err.contains("after 3 attempt(s)"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

//! Recreates the paper's worked examples (Fig. 3 and Fig. 5) and checks
//! that this implementation produces exactly the published outcomes.
//!
//! Paper gate ids are 1-based (1-15); ours are 0-based (0-14), so
//! paper id `k` is `GateId::new(k - 1)` here.

use tdals::core::{reproduce, Candidate, LevelWeights};
use tdals::netlist::cell::{Cell, CellFunc, Drive};
use tdals::netlist::{GateId, Netlist, SignalRef};

/// The circuit of Fig. 3: PIs 1-4, gates 5-15 with the fan-in adjacency
/// listed in the figure.
fn fig3() -> Netlist {
    let x1 = |f| Cell::new(f, Drive::X1);
    let mut n = Netlist::new("fig3");
    for i in 1..=4 {
        n.add_input(format!("n{i}"));
    }
    let g = |k: usize| SignalRef::Gate(GateId::new(k - 1));
    let rows: [(usize, CellFunc, Vec<SignalRef>); 11] = [
        (5, CellFunc::And2, vec![g(1), g(2)]),
        (6, CellFunc::Or2, vec![g(2), g(3)]),
        (7, CellFunc::Nand2, vec![g(3), g(4)]),
        (8, CellFunc::And2, vec![g(5), g(6)]),
        (9, CellFunc::Xor2, vec![g(6), g(7)]),
        (10, CellFunc::Or2, vec![g(4), g(7)]),
        (11, CellFunc::Or2, vec![g(5), g(8)]),
        (12, CellFunc::And2, vec![g(9), g(10)]),
        (13, CellFunc::Inv, vec![g(11)]),
        (14, CellFunc::Buf, vec![g(9)]),
        (15, CellFunc::Inv, vec![g(12)]),
    ];
    for (id, func, fanins) in rows {
        let got = n
            .add_gate(format!("u{id}"), x1(func), fanins)
            .expect("paper adjacency is valid");
        assert_eq!(got, GateId::new(id - 1), "paper ids map 1:1");
    }
    n.add_output("po1", g(13));
    n.add_output("po2", g(14));
    n.add_output("po3", g(15));
    n.check_invariants().expect("Fig. 3 is a valid netlist");
    n
}

fn fanin_ids(n: &Netlist, paper_id: usize) -> Vec<SignalRef> {
    n.gate(GateId::new(paper_id - 1)).fanins().to_vec()
}

fn pg(paper_id: usize) -> SignalRef {
    SignalRef::Gate(GateId::new(paper_id - 1))
}

#[test]
fn fig3_adjacency_matches_figure() {
    let n = fig3();
    assert_eq!(fanin_ids(&n, 5), vec![pg(1), pg(2)]);
    assert_eq!(fanin_ids(&n, 11), vec![pg(5), pg(8)]);
    assert_eq!(fanin_ids(&n, 12), vec![pg(9), pg(10)]);
    assert_eq!(fanin_ids(&n, 15), vec![pg(12)]);
    assert_eq!(n.input_count(), 4);
    assert_eq!(n.output_count(), 3);
}

#[test]
fn fig5_wire_by_constant_searching() {
    // "the fan-in adjacency of the ID11 gate is changed from (5, 8) to
    // (5, con0), greatly decreasing the Path1 depth."
    let mut n = fig3();
    n.substitute(GateId::new(8 - 1), SignalRef::Const0)
        .expect("wire-by-constant is legal");
    assert_eq!(fanin_ids(&n, 11), vec![pg(5), SignalRef::Const0]);
    // Gate 8 is now dangling, like the figure's cs1 shows.
    assert!(!n.live_mask()[8 - 1]);
    n.check_invariants().expect("still valid");
}

#[test]
fn fig5_wire_by_wire_searching() {
    // "the fan-in adjacency of ID15 PO is changed from 12 to 10,
    // decreasing the Path3 depth" — gate 10 is in gate 12's TFI.
    let mut n = fig3();
    assert!(n.tfi_mask(GateId::new(12 - 1))[10 - 1]);
    n.substitute(GateId::new(12 - 1), pg(10))
        .expect("wire-by-wire from the TFI is legal");
    assert_eq!(fanin_ids(&n, 15), vec![pg(10)]);
    assert!(!n.live_mask()[12 - 1], "gate 12 dangles");
}

/// Builds an evaluated candidate whose per-PO `Level` values are fixed
/// by construction: with weights `(wt=1, we=0)` the level is `1/Ta`, so
/// `Ta = 1/level` reproduces the figure's numbers exactly.
fn candidate_with_levels(netlist: Netlist, levels: [f64; 3]) -> Candidate {
    Candidate {
        depth: 4,
        cpd: 1.0,
        area: netlist.area_live(),
        error: 0.0,
        fd: 1.0,
        fa: 1.0,
        fitness: 1.0,
        po_arrivals: levels.map(|l| 1.0 / l).to_vec(),
        po_errors: vec![1.0; 3],
        netlist,
    }
}

#[test]
fn fig5_circuit_reproduction_builds_cr1() {
    // Circuit cp1: the Fig. 3 netlist with PO3 re-pointed through
    // gate 7 (15:(7)); gates 12 and 10 dangling.
    let mut cp1 = fig3();
    cp1.set_fanins(GateId::new(15 - 1), vec![pg(7)])
        .expect("15:(7)");
    // Circuit cp2: 11:(5,2) — gate 8 dangling.
    let mut cp2 = fig3();
    cp2.set_fanins(GateId::new(11 - 1), vec![pg(5), pg(2)])
        .expect("11:(5,2)");

    // Levels from the figure: cp1 = (9.6, 10.2, 14.0),
    // cp2 = (11.3, 10.2, 10.6).
    let ca = candidate_with_levels(cp1, [9.6, 10.2, 14.0]);
    let cb = candidate_with_levels(cp2, [11.3, 10.2, 10.6]);
    // Pure timing weights make Level = 1/Ta exactly.
    let weights = LevelWeights::new(1.0, 0.0);
    let child = reproduce(&ca, &cb, &weights);
    child.check_invariants().expect("cr1 is valid");

    // cr1 per the figure: PO1-TFI from cp2 (13:(11), 11:(5,2), 5:(1,2)),
    // PO2-TFI shared, PO3-TFI from cp1 (15:(7), 7:(3,4)).
    assert_eq!(fanin_ids(&child, 11), vec![pg(5), pg(2)], "PO1 from cp2");
    assert_eq!(fanin_ids(&child, 13), vec![pg(11)]);
    assert_eq!(fanin_ids(&child, 15), vec![pg(7)], "PO3 from cp1");
    assert_eq!(fanin_ids(&child, 14), vec![pg(9)], "PO2 shared");
    assert_eq!(fanin_ids(&child, 9), vec![pg(6), pg(7)]);

    // "gates with IDs 8, 10 and 12 are not in any PO-TFI pair …
    // their information is selected from cp1 and cp2": both parents
    // agree on these rows, and the child keeps them.
    assert_eq!(fanin_ids(&child, 8), vec![pg(5), pg(6)]);
    assert_eq!(fanin_ids(&child, 10), vec![pg(4), pg(7)]);
    assert_eq!(fanin_ids(&child, 12), vec![pg(9), pg(10)]);

    // And exactly those three gates dangle in cr1, as drawn.
    let live = child.live_mask();
    for dangling in [8usize, 10, 12] {
        assert!(!live[dangling - 1], "gate {dangling} dangles in cr1");
    }
    for alive in [5usize, 6, 7, 9, 11, 13, 14, 15] {
        assert!(live[alive - 1], "gate {alive} is live in cr1");
    }
}

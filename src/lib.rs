//! # tdals — Timing-Driven Approximate Logic Synthesis
//!
//! A Rust reproduction of *"Timing-driven Approximate Logic Synthesis
//! Based on Double-chase Grey Wolf Optimizer"* (Hu, Ye, Chen, Yan, Yu —
//! DATE 2025), complete with every substrate the paper's flow relies on:
//! a 28nm-class cell library, gate fan-in adjacency netlists, structural
//! Verilog I/O, static timing analysis, bit-parallel Monte-Carlo error
//! estimation, the benchmark suite, the DCGWO optimizer itself, and the
//! baseline methods it is evaluated against.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`netlist`] | `tdals-netlist` | cells, netlists, Verilog |
//! | [`sim`] | `tdals-sim` | simulation, ER/NMED, similarity |
//! | [`sta`] | `tdals-sta` | timing analysis, gate sizing |
//! | [`circuits`] | `tdals-circuits` | TABLE I benchmark generators |
//! | [`core`] | `tdals-core` | LACs, DCGWO, post-opt, full flow |
//! | [`baselines`] | `tdals-baselines` | VECBEE-S / VaACS / HEDALS / GWO |
//! | [`server`] | `tdals-server` | multi-tenant session scheduler |
//! | [`cluster`] | `tdals-cluster` | multi-process shard coordinator |
//! | [`lint`] | `tdals-lint` | structural netlist lint rules |
//! | [`obs`] | `tdals-obs` | metrics, span tracing, clock facade |
//!
//! # Quick start
//!
//! Every optimizer — DCGWO and all four baselines — plugs into the
//! same builder-style session (`tdals::core::api`), which streams
//! progress events, honors budgets/cancellation, and returns one
//! unified outcome type:
//!
//! ```
//! use tdals::circuits::Benchmark;
//! use tdals::core::api::{Dcgwo, Flow};
//! use tdals::sim::ErrorMetric;
//!
//! // Approximate the 16-bit max unit under a 2.44% NMED budget.
//! let accurate = Benchmark::Max16.build();
//! let outcome = Flow::for_netlist(&accurate)
//!     .metric(ErrorMetric::Nmed)
//!     .error_bound(0.0244)
//!     .vectors(1024) // demo-sized settings
//!     .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(8, 4))
//!     .run()
//!     .expect("valid configuration");
//! assert!(outcome.error <= 0.0244);
//! assert!(outcome.ratio_cpd <= 1.0); // never slower than the input
//! ```
//!
//! Swap the optimizer to compare methods under identical protocol:
//! `.optimizer(tdals::baselines::Method::Hedals.optimizer(&cfg))`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tdals_baselines as baselines;
pub use tdals_circuits as circuits;
pub use tdals_cluster as cluster;
pub use tdals_core as core;
pub use tdals_lint as lint;
pub use tdals_netlist as netlist;
pub use tdals_obs as obs;
pub use tdals_server as server;
pub use tdals_sim as sim;
pub use tdals_sta as sta;

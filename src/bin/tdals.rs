//! `tdals` — command-line front end for the timing-driven ALS flow.
//!
//! Subcommands:
//!
//! * `flow`   — approximate a structural-Verilog netlist (or a named
//!   benchmark) under an ER/NMED budget with any of the five methods
//!   and write the result as Verilog;
//! * `serve-batch` — run a JSON manifest of jobs as concurrent
//!   sessions over one shared worker pool and write a deterministic
//!   results file;
//! * `shard-batch` — fan the same manifest across N worker processes
//!   (spawned `serve-batch` children, or running `serve` daemons via
//!   `--connect`) and merge a results file byte-identical to the
//!   single-process run;
//! * `serve`  — the same serving layer as a long-lived daemon speaking
//!   the versioned frame protocol over TCP or a unix socket;
//! * `submit` — client for `serve`: submit a manifest, stream events,
//!   reassemble a results file byte-identical to `serve-batch`'s;
//! * `stats`  — query a running daemon's metric registry (counters,
//!   gauges, histograms) plus per-tenant/per-session tallies;
//! * `report` — static timing + statistics report for a netlist;
//! * `bench`  — emit one of the paper's regenerated benchmarks as
//!   Verilog;
//! * `lint`   — structural verification of a netlist (undriven nets,
//!   cycles, dangling wires, fan-out consistency, …) with optional
//!   machine-readable JSON findings.
//!
//! ```sh
//! tdals bench --name Adder16 --output adder16.v
//! tdals flow --input adder16.v --metric nmed --bound 0.0244 --output approx.v
//! tdals flow --input bench:Max16 --metric nmed --bound 0.0244 --method hedals --progress
//! tdals serve-batch --manifest jobs.json --total-threads 4 --out results.json
//! tdals shard-batch --manifest jobs.json --shards 3 --out results.json
//! tdals serve --listen 127.0.0.1:7171 --total-threads 4
//! tdals submit --connect 127.0.0.1:7171 --manifest jobs.json --out results.json --shutdown
//! tdals report --input approx.v
//! tdals lint --input approx.v --deny warnings --json
//! ```

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;
use std::time::Duration;

use tdals::baselines::Method;
use tdals::circuits::{Benchmark, ALL_BENCHMARKS};
use tdals::cluster::{merge, plan, run_children, run_daemons, ShardPolicy, SupervisorOptions};
use tdals::core::api::{FlowEvent, FnObserver};
use tdals::netlist::{verilog, Netlist};
use tdals::server::{
    as_error, check_bound, connect_retry, event_to_json, parse_worker_count,
    results_document_from_records, BatchOptions, BatchRun, Connection, Daemon, DaemonConfig,
    FlowJob, Listener, Manifest, Request, Stream, PROTOCOL_SCHEMA,
};
use tdals::sim::ErrorMetric;
use tdals::sta::{analyze, critical_path, TimingConfig};
use tdals_bench::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(CliError::Run(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// A usage error reprints the option summary; a run error (bad bound,
/// unknown benchmark, I/O or parse failure) is reported on its own —
/// the user typed a structurally valid command line and a usage dump
/// would bury the actual problem.
enum CliError {
    Usage(String),
    Run(String),
}

impl CliError {
    fn run(message: impl Into<String>) -> CliError {
        CliError::Run(message.into())
    }
}

const USAGE: &str = "usage:
  tdals flow   --input <file.v | bench:NAME> --metric <er|nmed> --bound <f>
               [--method <dcgwo|gwo|hedals|greedy|vaacs>] [--output <file.v>]
               [--population <n>] [--iterations <n>] [--vectors <n>]
               [--area-con <µm²>] [--seed <n>] [--threads <n>] [--progress]
               [--trace <trace.json>]
  tdals serve-batch --manifest <jobs.json> [--out <results.json>]
               [--total-threads <n>] [--session-threads <n>] [--progress]
               [--trace <trace.json>]
  tdals shard-batch --manifest <jobs.json> --shards <n>
               [--workers serve-batch | --connect <addr,addr,...>]
               [--policy <round-robin|size-weighted>] [--out <results.json>]
               [--shard-map <file.json>] [--total-threads <n>] [--timeout <secs>]
               [--retry <n>] [--progress] [--trace <trace.json>]
  tdals serve  --listen <host:port | socket-path> [--total-threads <n>]
               [--session-threads <n>] [--max-sessions <n>] [--tenant-quota <n>]
  tdals submit --connect <host:port | socket-path> [--manifest <jobs.json>]
               [--out <results.json>] [--tenant <name>] [--retry <n>]
               [--progress] [--drain] [--shutdown]
  tdals stats  --connect <host:port | socket-path> [--retry <n>]
  tdals report --input <file.v | bench:NAME>
  tdals bench  --name <NAME> [--output <file.v>]
  tdals lint   --input <file.v | bench:NAME> [--deny warnings] [--json]
               [--out <file.json>]
  tdals list";

/// Options that are flags (present/absent, no value).
const FLAGS: [&str; 4] = ["progress", "json", "drain", "shutdown"];

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let opts = parse_options(rest).map_err(CliError::Usage)?;
    match command.as_str() {
        "flow" => cmd_flow(&opts),
        "serve-batch" => cmd_serve_batch(&opts),
        "shard-batch" => cmd_shard_batch(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "stats" => cmd_stats(&opts),
        "report" => cmd_report(&opts),
        "bench" => cmd_bench(&opts),
        "lint" => cmd_lint(&opts),
        "list" => cmd_list(),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found `{key}`"));
        };
        if FLAGS.contains(&name) {
            opts.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        opts.insert(name.to_owned(), value.clone());
    }
    Ok(opts)
}

fn load_input(opts: &HashMap<String, String>) -> Result<Netlist, CliError> {
    let input = opts
        .get("input")
        .ok_or_else(|| CliError::Usage("--input is required".into()))?;
    if let Some(name) = input.strip_prefix("bench:") {
        return benchmark_by_name(name).map(Benchmark::build);
    }
    let text =
        fs::read_to_string(input).map_err(|e| CliError::run(format!("reading {input}: {e}")))?;
    verilog::parse(&text).map_err(|e| CliError::run(format!("parsing {input}: {e}")))
}

fn benchmark_by_name(name: &str) -> Result<Benchmark, CliError> {
    ALL_BENCHMARKS
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError::run(format!("unknown benchmark `{name}` (try `tdals list`)")))
}

fn write_output(opts: &HashMap<String, String>, netlist: &Netlist) -> Result<(), CliError> {
    let text = verilog::to_verilog(netlist);
    match opts.get("output") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::run(format!("--{key}: invalid value `{v}`"))),
        None => Ok(default),
    }
}

/// Parses and validates `--threads`: a positive integer worker count
/// (the shared [`parse_worker_count`] rule, so the wording matches
/// every other front end). Absent means one worker per available core;
/// results are bit-identical whatever the count, so the flag only
/// trades wall-clock for cores. `0` and non-numeric values are rejected
/// with a typed run error (a structurally valid command line never
/// earns a usage dump).
fn parse_threads(opts: &HashMap<String, String>) -> Result<usize, CliError> {
    let Some(raw) = opts.get("threads") else {
        return Ok(tdals::core::par::available_threads());
    };
    parse_worker_count(raw).map_err(|msg| CliError::run(format!("--threads: {msg}")))
}

/// Parses and validates `--bound` via the shared [`check_bound`] rule —
/// the same range (and wording) the manifest parser enforces, rejecting
/// NaN, negatives, and values above 1 up front instead of letting them
/// reach the optimizer.
fn parse_bound(opts: &HashMap<String, String>) -> Result<f64, CliError> {
    let raw = opts
        .get("bound")
        .ok_or_else(|| CliError::Usage("--bound is required".into()))?;
    let bound: f64 = raw
        .parse()
        .map_err(|_| CliError::run(format!("--bound: `{raw}` is not a number")))?;
    check_bound(bound).map_err(|msg| CliError::run(format!("--bound: {msg}")))
}

/// Arms the span recorder when `--trace <out.json>` was passed,
/// returning the output path for [`write_trace`] to drain into after
/// the run. Tracing is strictly additive: it records timings, never
/// feeds them back, so results files are byte-identical with it on.
fn trace_path(opts: &HashMap<String, String>) -> Option<&String> {
    let path = opts.get("trace")?;
    tdals::obs::trace::enable(0);
    Some(path)
}

/// Drains the span recorder into a Chrome trace-event JSON artifact —
/// load it in `chrome://tracing` or <https://ui.perfetto.dev>.
fn write_trace(path: Option<&String>) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    tdals::obs::trace::disable();
    let dropped = tdals::obs::trace::dropped();
    let records = tdals::obs::trace::drain();
    let doc = tdals_bench::obs_report::trace_to_json(&records, dropped);
    let text = format!("{doc}\n");
    fs::write(path, &text).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
    eprintln!("wrote {path} ({} span(s))", records.len());
    Ok(())
}

fn cmd_flow(opts: &HashMap<String, String>) -> Result<(), CliError> {
    // The CLI is a thin shell over the same FlowJob the manifest format
    // and the daemon admit, so defaults and validation cannot drift
    // between the front ends.
    let input = opts
        .get("input")
        .ok_or_else(|| CliError::Usage("--input is required".into()))?;
    let base = if let Some(name) = input.strip_prefix("bench:") {
        FlowJob::benchmark(benchmark_by_name(name)?)
    } else {
        let text = fs::read_to_string(input)
            .map_err(|e| CliError::run(format!("reading {input}: {e}")))?;
        // Parse now: `flow` reports a broken file up front, not as a
        // session failure mid-run.
        verilog::parse(&text).map_err(|e| CliError::run(format!("parsing {input}: {e}")))?;
        FlowJob::verilog(input.clone(), text)
    };
    let metric = match opts.get("metric") {
        // A bad value on a structurally valid command line is a run
        // error, like `--bound` and `--method`; only a missing option
        // warrants the usage dump. One vocabulary with the manifest
        // format: `ErrorMetric::parse`.
        Some(name) => ErrorMetric::parse(name)
            .ok_or_else(|| CliError::run(format!("--metric must be er|nmed, got `{name}`")))?,
        None => return Err(CliError::Usage("--metric is required".into())),
    };
    let bound = parse_bound(opts)?;
    let method = match opts.get("method") {
        None => Method::Dcgwo,
        Some(name) => {
            Method::parse(name).ok_or_else(|| CliError::run(format!("unknown method `{name}`")))?
        }
    };
    let threads = parse_threads(opts)?;
    let area_con = match opts.get("area-con") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| CliError::run("--area-con: invalid number"))?,
        ),
        None => None,
    };
    let progress = opts.contains_key("progress");

    // Flag defaults are read *from the job*, so the CLI's defaults are
    // the manifest format's by construction.
    let job = base
        .clone()
        .with_metric(metric)
        .with_bound(bound)
        .with_method(method)
        .with_scale(
            parse_num(opts, "population", base.population)?,
            parse_num(opts, "iterations", base.iterations)?,
        )
        .with_vectors(parse_num(opts, "vectors", base.vectors)?)
        .with_seed(parse_num(opts, "seed", base.seed)?)
        .with_area_con(area_con);

    let label = method.label();
    let mut obs = FnObserver(move |ev: &FlowEvent| {
        if let FlowEvent::FlowStarted {
            gates,
            cpd_ori,
            area_ori,
            ..
        } = ev
        {
            eprintln!(
                "flow: {gates} gates, CPD_ori {cpd_ori:.2} ps, Area_ori {area_ori:.2} µm², \
                 method {label}, {threads} worker{}",
                if threads == 1 { "" } else { "s" }
            );
        }
        if progress {
            print_progress("", ev);
        }
    });
    let trace = trace_path(opts);
    let result = job
        .run_with(threads, job.budget.to_budget(), &mut obs)
        .map_err(|e| CliError::run(e.to_string()))?;
    write_trace(trace)?;
    eprintln!(
        "done: Ratio_cpd {:.4}, CPD_fac {:.2} ps, error {:.5}, area {:.2} µm², {:.1}s ({})",
        result.ratio_cpd,
        result.cpd_fac,
        result.error,
        result.area,
        result.runtime_s,
        result.stop()
    );
    write_output(opts, &result.netlist)
}

/// Renders streaming flow events for `flow --progress`, human-readable
/// (stderr, so piped Verilog output stays clean). The serving commands
/// (`serve-batch`, `submit`) stream the machine-readable wire frames
/// instead — see [`print_event_frame`].
fn print_progress(prefix: &str, ev: &FlowEvent) {
    match ev {
        FlowEvent::FlowStarted {
            optimizer,
            gates,
            cpd_ori,
            error_bound,
            ..
        } => eprintln!(
            "{prefix}[{optimizer}] start: {gates} gates, CPD_ori {cpd_ori:.2} ps, bound {error_bound}"
        ),
        FlowEvent::IterationFinished { stats } => eprintln!(
            "{prefix}  iter {:>3}: constraint {:.5}, best fitness {:.4}, depth {}, area {:.1}, {} feasible",
            stats.iteration,
            stats.constraint,
            stats.best_fitness,
            stats.best_depth,
            stats.best_area,
            stats.feasible
        ),
        FlowEvent::BestImproved {
            iteration,
            fitness,
            error,
            ..
        } => eprintln!(
            "{prefix}  iter {iteration:>3}: new best fitness {fitness:.4} (error {error:.5})"
        ),
        FlowEvent::LacAccepted {
            iteration,
            error,
            area,
        } => eprintln!(
            "{prefix}  iter {iteration:>3}: LAC accepted (error {error:.5}, area {area:.1})"
        ),
        FlowEvent::OptimizeFinished { stop, evaluations } => {
            eprintln!("{prefix}optimizer {stop} after {evaluations} evaluations");
        }
        FlowEvent::PostOptFinished { report } => eprintln!(
            "{prefix}post-opt: {} gates swept, {} sizing moves, CPD {:.2} -> {:.2} ps",
            report.gates_removed, report.sizing_moves, report.cpd_before, report.cpd_final
        ),
        _ => {}
    }
}

/// Parses an optional positive count option (`--total-threads`,
/// `--session-threads`, `--max-sessions`, `--tenant-quota`): the shared
/// [`parse_worker_count`] rule with the flag name prefixed, so the
/// typed-error contract matches `--threads`.
fn parse_positive(opts: &HashMap<String, String>, key: &str) -> Result<Option<usize>, CliError> {
    let Some(raw) = opts.get(key) else {
        return Ok(None);
    };
    parse_worker_count(raw)
        .map(Some)
        .map_err(|msg| CliError::run(format!("--{key}: {msg}")))
}

fn cmd_serve_batch(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let manifest_path = opts
        .get("manifest")
        .ok_or_else(|| CliError::Usage("--manifest is required".into()))?;
    // Flag validation first: a bad worker count is reported even when
    // the manifest is absent or broken.
    let total_flag = parse_positive(opts, "total-threads")?;
    let session_flag = parse_positive(opts, "session-threads")?;
    let text = fs::read_to_string(manifest_path)
        .map_err(|e| CliError::run(format!("reading {manifest_path}: {e}")))?;
    let manifest = Manifest::parse(&text, &|path| {
        fs::read_to_string(path).map_err(|e| e.to_string())
    })
    .map_err(|e| CliError::run(e.to_string()))?;
    let progress = opts.contains_key("progress");

    // The engine lives in tdals-server::batch — the same code path each
    // shard-batch worker process runs, which is what makes a sharded
    // run's merged results file byte-identical to this one. It
    // validates the whole batch before running any of it: a manifest
    // with one inadmissible job never produces a partial results file.
    let run = BatchRun::prepare(
        &manifest,
        &BatchOptions::new()
            .with_total_threads(total_flag)
            .with_session_threads(session_flag),
    )
    .map_err(|e| CliError::run(e.to_string()))?;
    eprintln!(
        "serve-batch: {} job(s) over {} worker slot(s), {} per session",
        run.jobs.len(),
        run.total_threads,
        run.session_cap
    );

    // Pump per-session event streams to stderr until every session is
    // done; results land in submission order whatever order they finish.
    let trace = trace_path(opts);
    let report = run
        .run(&mut |i, name, ev| {
            if progress {
                print_event_frame(i, name, event_to_json(ev));
            }
        })
        .map_err(|e| CliError::run(e.to_string()))?;
    write_trace(trace)?;

    let text = format!("{}\n", report.document());
    match opts.get("out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    eprintln!(
        "serve-batch done: {} completed, {} failed of {} job(s)",
        report.completed,
        report.failed,
        report.results.len()
    );
    if report.failed > 0 {
        return Err(CliError::run(format!(
            "{} job(s) did not complete (see the results file)",
            report.failed
        )));
    }
    Ok(())
}

fn cmd_shard_batch(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let manifest_path = opts
        .get("manifest")
        .ok_or_else(|| CliError::Usage("--manifest is required".into()))?;
    // Mode selection: --connect drives running daemons (mode B),
    // --workers serve-batch (the default) spawns child processes.
    let connect_specs: Option<Vec<String>> = opts.get("connect").map(|list| {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect()
    });
    match opts.get("workers").map(String::as_str) {
        None => {}
        Some("serve-batch") if connect_specs.is_some() => {
            return Err(CliError::run(
                "--workers serve-batch and --connect are mutually exclusive: child \
                 processes or running daemons, not both",
            ));
        }
        Some("serve-batch") => {}
        Some(other) => {
            return Err(CliError::run(format!(
                "--workers: only `serve-batch` workers can be spawned, got `{other}` \
                 (use --connect for running daemons)"
            )));
        }
    }
    let shards = match parse_positive(opts, "shards")? {
        Some(n) => n,
        // Mode B has a natural default: one shard per daemon.
        None => match &connect_specs {
            Some(specs) if !specs.is_empty() => specs.len(),
            _ => return Err(CliError::Usage("--shards is required".into())),
        },
    };
    let policy = match opts.get("policy") {
        None => ShardPolicy::RoundRobin,
        Some(name) => ShardPolicy::parse(name).ok_or_else(|| {
            CliError::run(format!(
                "--policy must be round-robin|size-weighted, got `{name}`"
            ))
        })?,
    };
    let timeout = parse_positive(opts, "timeout")?.map(|secs| Duration::from_secs(secs as u64));
    let total_flag = parse_positive(opts, "total-threads")?;
    let retries = parse_num(opts, "retry", 0usize)?;
    let progress = opts.contains_key("progress");

    let text = fs::read_to_string(manifest_path)
        .map_err(|e| CliError::run(format!("reading {manifest_path}: {e}")))?;
    let manifest = Manifest::parse(&text, &|path| {
        fs::read_to_string(path).map_err(|e| e.to_string())
    })
    .map_err(|e| CliError::run(e.to_string()))?;

    let shard_plan = plan(&manifest, shards, policy).map_err(|e| CliError::run(e.to_string()))?;
    if let Some(path) = opts.get("shard-map") {
        let text = format!("{}\n", shard_plan.to_json());
        fs::write(path, &text).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
        eprintln!("wrote {path}");
    }

    let supervisor = SupervisorOptions::new()
        .with_timeout(timeout)
        .with_total_threads(total_flag)
        .with_retries(retries)
        .with_progress(progress);
    let mut on_frame = |frame: &Json| {
        if let Some(stats) = frame.get("stats") {
            // Per-shard stats summary (mode B, from daemons that speak
            // the verb) — part of the merge report, so it prints
            // whether or not --progress is set.
            let shard = frame.get("shard").and_then(Json::as_f64).unwrap_or(-1.0);
            let counter = |name: &str| {
                stats
                    .get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            eprintln!(
                "shard {shard:.0} stats: {:.0} evaluations, {:.0} frames read, \
                 {:.0} frames written, {:.0} session(s) reaped",
                counter("evaluations"),
                counter("frames_read"),
                counter("frames_written"),
                counter("sessions_reaped")
            );
        } else if progress {
            eprintln!("{}", frame.compact());
        }
    };
    let trace = trace_path(opts);
    let docs = match &connect_specs {
        Some(specs) => {
            eprintln!(
                "shard-batch: {} job(s) over {} shard(s) ({} policy), daemons {}",
                shard_plan.job_count(),
                shard_plan.shard_count(),
                policy,
                specs.join(", ")
            );
            run_daemons(&manifest, &shard_plan, specs, &supervisor, &mut on_frame)
        }
        None => {
            // Each worker is this very binary running `serve-batch` on
            // its shard's sub-manifest.
            let exe = std::env::current_exe()
                .map_err(|e| CliError::run(format!("locating the tdals binary: {e}")))?;
            eprintln!(
                "shard-batch: {} job(s) over {} shard(s) ({} policy), serve-batch workers",
                shard_plan.job_count(),
                shard_plan.shard_count(),
                policy
            );
            run_children(&manifest, &shard_plan, &exe, &supervisor, &mut on_frame)
        }
    }
    .map_err(|e| CliError::run(e.to_string()))?;

    let merged = {
        let _span = tdals::obs::trace::span(tdals::obs::trace::cat::PHASE, "merge")
            .arg("shards", shard_plan.shard_count() as u64);
        merge(&shard_plan, &docs)
    };
    write_trace(trace)?;
    let merged = merged.map_err(|e| CliError::run(e.to_string()))?;
    match opts.get("out") {
        Some(path) => {
            fs::write(path, &merged).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{merged}"),
    }

    // Same exit contract as serve-batch: failed jobs are *in* the
    // deterministic results file, and the command exits nonzero.
    let failed = Json::parse(&merged)
        .ok()
        .and_then(|doc| {
            doc.get("results").and_then(Json::as_array).map(|records| {
                records
                    .iter()
                    .filter(|r| r.get("status").and_then(Json::as_str) != Some("completed"))
                    .count()
            })
        })
        .unwrap_or(0);
    eprintln!(
        "shard-batch done: {} completed, {failed} failed of {} job(s) over {} shard(s)",
        shard_plan.job_count() - failed,
        shard_plan.job_count(),
        shard_plan.shard_count()
    );
    if failed > 0 {
        return Err(CliError::run(format!(
            "{failed} job(s) did not complete (see the results file)"
        )));
    }
    Ok(())
}

/// Prints one `--progress` line for the serving commands: a compact
/// wire frame tagging the session's local submission index and name,
/// with the event in the protocol's own encoding. `serve-batch` and
/// `submit` share this renderer, so their progress streams for the same
/// manifest are line-for-line comparable.
fn print_event_frame(session: usize, name: &str, event: Json) {
    let frame = Json::Obj(vec![
        ("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64)),
        ("session".into(), Json::Num(session as f64)),
        ("name".into(), Json::Str(name.into())),
        ("event".into(), event),
    ]);
    eprintln!("{}", frame.compact());
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let listen = opts
        .get("listen")
        .ok_or_else(|| CliError::Usage("--listen is required".into()))?;
    let total = parse_positive(opts, "total-threads")?
        .unwrap_or_else(tdals::core::par::available_threads)
        .max(1);
    let mut config = DaemonConfig::new(total);
    if let Some(cap) = parse_positive(opts, "session-threads")? {
        config = config.with_session_cap(cap);
    }
    if let Some(n) = parse_positive(opts, "max-sessions")? {
        config = config.with_max_sessions(n);
    }
    if let Some(quota) = parse_positive(opts, "tenant-quota")? {
        config = config.with_tenant_quota(quota);
    }
    let daemon = Daemon::new(config).map_err(|e| CliError::run(e.to_string()))?;
    let listener =
        Listener::bind(listen).map_err(|e| CliError::run(format!("binding {listen}: {e}")))?;
    eprintln!(
        "serve: listening on {} with {total} worker slot(s)",
        listener.local_spec()
    );
    daemon
        .serve(listener)
        .map_err(|e| CliError::run(format!("serving on {listen}: {e}")))?;
    eprintln!("serve: shut down");
    Ok(())
}

/// Sends one request frame and reads the daemon's reply, turning error
/// frames into typed run errors.
fn roundtrip(conn: &mut Connection<Stream>, request: &Request) -> Result<Json, CliError> {
    conn.send(&request.to_json())
        .map_err(|e| CliError::run(format!("sending to daemon: {e}")))?;
    let frame = match conn.receive() {
        Ok(Some(frame)) => frame,
        Ok(None) => return Err(CliError::run("daemon closed the connection")),
        Err(e) => return Err(CliError::run(format!("reading from daemon: {e}"))),
    };
    if let Some((code, message)) = as_error(&frame) {
        return Err(CliError::run(format!("daemon: {code}: {message}")));
    }
    Ok(frame)
}

fn reply_session_id(frame: &Json) -> Result<u64, CliError> {
    frame
        .get("session")
        .and_then(Json::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| CliError::run("daemon reply is missing `session`"))
}

fn cmd_submit(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let spec = opts
        .get("connect")
        .ok_or_else(|| CliError::Usage("--connect is required".into()))?;
    let drain = opts.contains_key("drain");
    let shutdown = opts.contains_key("shutdown");
    let manifest_path = opts.get("manifest");
    if manifest_path.is_none() && !drain && !shutdown {
        return Err(CliError::Usage(
            "--manifest is required (or pass --drain / --shutdown)".into(),
        ));
    }
    let tenant = opts.get("tenant").cloned();
    let progress = opts.contains_key("progress");
    // Dial retries are opt-in (default 0): an absent daemon should fail
    // fast with the typed connection-refused error unless the caller is
    // deliberately racing a daemon that is still binding its socket
    // (the CI soak job does exactly that, with a generous --retry).
    let retries = parse_num(opts, "retry", 0usize)?;

    // Parse (and resolve circuit files to inline Verilog) before
    // dialing: a broken manifest never opens a socket, and the daemon
    // itself reads no files.
    let jobs: Vec<FlowJob> = match manifest_path {
        None => Vec::new(),
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| CliError::run(format!("reading {path}: {e}")))?;
            Manifest::parse(&text, &|p| fs::read_to_string(p).map_err(|e| e.to_string()))
                .map_err(|e| CliError::run(e.to_string()))?
                .jobs
        }
    };

    let mut conn =
        Connection::new(connect_retry(spec, retries).map_err(|e| CliError::run(e.to_string()))?);

    let mut sessions: Vec<(u64, String)> = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let reply = roundtrip(
            &mut conn,
            &Request::Submit {
                job: job.clone(),
                tenant: tenant.clone(),
            },
        )?;
        sessions.push((reply_session_id(&reply)?, job.name.clone()));
    }
    if !jobs.is_empty() {
        eprintln!("submit: {} job(s) to {spec}", jobs.len());
    }

    // Pump events and poll results until every session reports done.
    // Events drain even without --progress so the daemon's buffers stay
    // flat over long batches.
    let mut records: Vec<Option<Json>> = vec![None; sessions.len()];
    let mut statuses: Vec<Option<String>> = vec![None; sessions.len()];
    loop {
        let mut pending = false;
        for (i, (id, name)) in sessions.iter().enumerate() {
            if records[i].is_some() {
                continue;
            }
            let events = roundtrip(&mut conn, &Request::Events { session: *id })?;
            if progress {
                if let Some(Json::Arr(items)) = events.get("events") {
                    for ev in items {
                        print_event_frame(i, name, ev.clone());
                    }
                }
            }
            let reply = roundtrip(
                &mut conn,
                &Request::Result {
                    session: *id,
                    wait: false,
                },
            )?;
            if reply.get("done") == Some(&Json::Bool(true)) {
                records[i] = reply.get("record").cloned();
                statuses[i] = reply
                    .get("status")
                    .and_then(Json::as_str)
                    .map(str::to_owned);
                // One more drain: the events that landed between the
                // last poll and the session finishing.
                let events = roundtrip(&mut conn, &Request::Events { session: *id })?;
                if progress {
                    if let Some(Json::Arr(items)) = events.get("events") {
                        for ev in items {
                            print_event_frame(i, name, ev.clone());
                        }
                    }
                }
            } else {
                pending = true;
            }
        }
        if !pending {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut failed = 0usize;
    if !jobs.is_empty() {
        // The daemon ships each record without its `job` index — the
        // client knows its own submission order, so prepending it here
        // reassembles a document byte-identical to `serve-batch`'s.
        let rows: Vec<Json> = records
            .into_iter()
            .enumerate()
            .map(|(i, record)| {
                let mut members = vec![("job".to_owned(), Json::Num(i as f64))];
                if let Some(Json::Obj(fields)) = record {
                    members.extend(fields);
                }
                Json::Obj(members)
            })
            .collect();
        let doc = results_document_from_records(rows);
        let text = format!("{doc}\n");
        match opts.get("out") {
            Some(path) => {
                fs::write(path, &text)
                    .map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
                eprintln!("wrote {path}");
            }
            None => print!("{text}"),
        }
        let completed = statuses
            .iter()
            .filter(|s| s.as_deref() == Some("completed"))
            .count();
        failed = statuses.len() - completed;
        eprintln!(
            "submit done: {completed} completed, {failed} failed of {} job(s)",
            statuses.len()
        );
    }

    if drain || shutdown {
        let verb = if shutdown {
            Request::Shutdown
        } else {
            Request::Drain
        };
        let reply = roundtrip(&mut conn, &verb)?;
        let count = reply.get("sessions").and_then(Json::as_f64).unwrap_or(0.0);
        eprintln!(
            "{}: {count} session(s) settled",
            if shutdown { "shutdown" } else { "drain" }
        );
    }
    if failed > 0 {
        return Err(CliError::run(format!(
            "{failed} job(s) did not complete (see the results file)"
        )));
    }
    Ok(())
}

/// `tdals stats --connect <addr>`: one `stats` round-trip against a
/// running daemon, reply pretty-printed to stdout. An older daemon that
/// predates the verb answers `unknown-verb`, which surfaces here as a
/// plain run error naming the verbs it does speak.
fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let spec = opts
        .get("connect")
        .ok_or_else(|| CliError::Usage("--connect is required".into()))?;
    let retries = parse_num(opts, "retry", 0usize)?;
    let mut conn =
        Connection::new(connect_retry(spec, retries).map_err(|e| CliError::run(e.to_string()))?);
    let reply = roundtrip(&mut conn, &Request::Stats)?;
    println!("{reply}");
    Ok(())
}

fn cmd_report(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let netlist = load_input(opts)?;
    let cfg = TimingConfig::default();
    let report = analyze(&netlist, &cfg);
    println!("module {}", netlist.name());
    println!("  gates : {}", netlist.logic_gate_count());
    println!("  PIs   : {}", netlist.input_count());
    println!("  POs   : {}", netlist.output_count());
    println!("  area  : {:.2} µm² (live)", netlist.area_live());
    println!("  depth : {} levels", report.max_depth());
    println!("  CPD   : {:.2} ps", report.critical_path_delay());
    let dead = netlist.live_mask().iter().filter(|&&l| !l).count();
    println!("  dangling gates: {dead}");
    let mut hist: Vec<(String, usize)> = netlist
        .func_histogram()
        .into_iter()
        .map(|(f, c)| (f.to_string(), c))
        .collect();
    hist.sort();
    println!(
        "  cell mix: {}",
        hist.iter()
            .map(|(f, c)| format!("{f}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let path = critical_path(&netlist, &report);
    println!("  critical path ({} gates):", path.len());
    for gate in path.iter().rev().take(12) {
        let g = netlist.gate(*gate);
        println!(
            "    {:>10.2} ps  {:<10} {}",
            report.arrival(*gate),
            g.cell().lib_name(),
            g.name()
        );
    }
    if path.len() > 12 {
        println!("    ... {} more", path.len() - 12);
    }
    Ok(())
}

fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let name = opts
        .get("name")
        .ok_or_else(|| CliError::Usage("--name is required".into()))?;
    let bench = benchmark_by_name(name)?;
    let netlist = bench.build();
    eprintln!(
        "{}: {} gates, {} PIs, {} POs — {}",
        bench.name(),
        netlist.logic_gate_count(),
        netlist.input_count(),
        netlist.output_count(),
        bench.description()
    );
    write_output(opts, &netlist)
}

fn cmd_lint(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let input = opts
        .get("input")
        .ok_or_else(|| CliError::Usage("--input is required".into()))?;
    let deny_warnings = match opts.get("deny").map(String::as_str) {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(CliError::run(format!(
                "--deny: only `warnings` can be denied, got `{other}`"
            )))
        }
    };
    // A Verilog file goes through `lint_verilog`, so a file that does
    // not even parse still produces one located finding instead of a
    // bare parse error; generated benchmarks are linted in memory.
    let (subject, report) = if let Some(name) = input.strip_prefix("bench:") {
        let netlist = benchmark_by_name(name)?.build();
        (
            netlist.name().to_owned(),
            tdals::lint::lint_netlist(&netlist),
        )
    } else {
        let text = fs::read_to_string(input)
            .map_err(|e| CliError::run(format!("reading {input}: {e}")))?;
        (input.clone(), tdals::lint::lint_verilog(&text))
    };

    for finding in report.findings() {
        eprintln!("{subject}: {finding}");
    }
    let json = lint_json(input, &report);
    if let Some(path) = opts.get("out") {
        let text = format!("{json}\n");
        fs::write(path, &text).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    if opts.contains_key("json") {
        println!("{json}");
    }
    eprintln!(
        "{subject}: {} error(s), {} warning(s)",
        report.error_count(),
        report.warning_count()
    );
    if !report.has_no_errors() {
        return Err(CliError::run(format!(
            "{subject}: lint failed with {} error(s)",
            report.error_count()
        )));
    }
    if deny_warnings && !report.is_clean() {
        return Err(CliError::run(format!(
            "{subject}: lint failed with {} warning(s) (--deny warnings)",
            report.warning_count()
        )));
    }
    Ok(())
}

/// Renders a lint report as the machine-readable findings document the
/// CI gate archives (same self-contained JSON codec as the benchmark
/// pipeline).
fn lint_json(input: &str, report: &tdals::lint::LintReport) -> Json {
    let opt_num = |v: Option<usize>| match v {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    };
    let findings: Vec<Json> = report
        .findings()
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(f.rule.as_str().into())),
                ("severity".into(), Json::Str(f.severity.to_string())),
                ("message".into(), Json::Str(f.message.clone())),
                ("gate".into(), opt_num(f.gate.map(|g| g.index()))),
                ("output".into(), opt_num(f.output)),
                ("line".into(), opt_num(f.line)),
                ("column".into(), opt_num(f.column)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("input".into(), Json::Str(input.into())),
        ("errors".into(), Json::Num(report.error_count() as f64)),
        ("warnings".into(), Json::Num(report.warning_count() as f64)),
        ("findings".into(), Json::Arr(findings)),
    ])
}

fn cmd_list() -> Result<(), CliError> {
    println!("{:<12} {:<10} {:>7}  description", "name", "class", "#gate");
    for bench in ALL_BENCHMARKS {
        let n = bench.build();
        let class = match bench.class() {
            tdals::circuits::CircuitClass::RandomControl => "rand/ctrl",
            tdals::circuits::CircuitClass::Arithmetic => "arith",
        };
        println!(
            "{:<12} {:<10} {:>7}  {}",
            bench.name(),
            class,
            n.logic_gate_count(),
            bench.description()
        );
    }
    Ok(())
}

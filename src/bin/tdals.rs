//! `tdals` — command-line front end for the timing-driven ALS flow.
//!
//! Subcommands:
//!
//! * `flow`   — approximate a structural-Verilog netlist (or a named
//!   benchmark) under an ER/NMED budget with any of the five methods
//!   and write the result as Verilog;
//! * `report` — static timing + statistics report for a netlist;
//! * `bench`  — emit one of the paper's regenerated benchmarks as
//!   Verilog.
//!
//! ```sh
//! tdals bench --name Adder16 --output adder16.v
//! tdals flow --input adder16.v --metric nmed --bound 0.0244 --output approx.v
//! tdals flow --input bench:Max16 --metric nmed --bound 0.0244 --method hedals --progress
//! tdals report --input approx.v
//! ```

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

use tdals::baselines::{Method, MethodConfig};
use tdals::circuits::{Benchmark, ALL_BENCHMARKS};
use tdals::core::api::{Flow, FlowEvent};
use tdals::core::EvalContext;
use tdals::netlist::{verilog, Netlist};
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::{analyze, critical_path, TimingConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(CliError::Run(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// A usage error reprints the option summary; a run error (bad bound,
/// unknown benchmark, I/O or parse failure) is reported on its own —
/// the user typed a structurally valid command line and a usage dump
/// would bury the actual problem.
enum CliError {
    Usage(String),
    Run(String),
}

impl CliError {
    fn run(message: impl Into<String>) -> CliError {
        CliError::Run(message.into())
    }
}

const USAGE: &str = "usage:
  tdals flow   --input <file.v | bench:NAME> --metric <er|nmed> --bound <f>
               [--method <dcgwo|gwo|hedals|greedy|vaacs>] [--output <file.v>]
               [--population <n>] [--iterations <n>] [--vectors <n>]
               [--area-con <µm²>] [--seed <n>] [--threads <n>] [--progress]
  tdals report --input <file.v | bench:NAME>
  tdals bench  --name <NAME> [--output <file.v>]
  tdals list";

/// Options that are flags (present/absent, no value).
const FLAGS: [&str; 1] = ["progress"];

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let opts = parse_options(rest).map_err(CliError::Usage)?;
    match command.as_str() {
        "flow" => cmd_flow(&opts),
        "report" => cmd_report(&opts),
        "bench" => cmd_bench(&opts),
        "list" => cmd_list(),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found `{key}`"));
        };
        if FLAGS.contains(&name) {
            opts.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        opts.insert(name.to_owned(), value.clone());
    }
    Ok(opts)
}

fn load_input(opts: &HashMap<String, String>) -> Result<Netlist, CliError> {
    let input = opts
        .get("input")
        .ok_or_else(|| CliError::Usage("--input is required".into()))?;
    if let Some(name) = input.strip_prefix("bench:") {
        return benchmark_by_name(name).map(Benchmark::build);
    }
    let text =
        fs::read_to_string(input).map_err(|e| CliError::run(format!("reading {input}: {e}")))?;
    verilog::parse(&text).map_err(|e| CliError::run(format!("parsing {input}: {e}")))
}

fn benchmark_by_name(name: &str) -> Result<Benchmark, CliError> {
    ALL_BENCHMARKS
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError::run(format!("unknown benchmark `{name}` (try `tdals list`)")))
}

fn write_output(opts: &HashMap<String, String>, netlist: &Netlist) -> Result<(), CliError> {
    let text = verilog::to_verilog(netlist);
    match opts.get("output") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| CliError::run(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::run(format!("--{key}: invalid value `{v}`"))),
        None => Ok(default),
    }
}

/// Parses and validates `--threads`: a positive integer worker count.
/// Absent means one worker per available core; results are
/// bit-identical whatever the count, so the flag only trades wall-clock
/// for cores. `0` and non-numeric values are rejected with a typed run
/// error (a structurally valid command line never earns a usage dump).
fn parse_threads(opts: &HashMap<String, String>) -> Result<usize, CliError> {
    let Some(raw) = opts.get("threads") else {
        return Ok(tdals::core::par::available_threads());
    };
    let threads: usize = raw.parse().map_err(|_| {
        CliError::run(format!(
            "--threads: `{raw}` is not a number (expected a worker count like 4)"
        ))
    })?;
    if threads == 0 {
        return Err(CliError::run(
            "--threads: 0 workers cannot evaluate anything; pass 1 or more \
             (omit the flag to use every available core)",
        ));
    }
    Ok(threads)
}

/// Parses and validates `--bound`: a finite number in `[0, 1]` (both ER
/// and NMED are normalized), rejecting NaN, negatives, and values
/// above 1 up front instead of letting them reach the optimizer.
fn parse_bound(opts: &HashMap<String, String>) -> Result<f64, CliError> {
    let raw = opts
        .get("bound")
        .ok_or_else(|| CliError::Usage("--bound is required".into()))?;
    let bound: f64 = raw
        .parse()
        .map_err(|_| CliError::run(format!("--bound: `{raw}` is not a number")))?;
    // `contains` rejects NaN too: NaN compares false against both ends.
    if !(0.0..=1.0).contains(&bound) {
        return Err(CliError::run(format!(
            "--bound: {raw} is out of range (error bounds are in [0, 1])"
        )));
    }
    Ok(bound)
}

fn cmd_flow(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let accurate = load_input(opts)?;
    let metric = match opts.get("metric").map(String::as_str) {
        Some("er") => ErrorMetric::ErrorRate,
        Some("nmed") => ErrorMetric::Nmed,
        // A bad value on a structurally valid command line is a run
        // error, like `--bound` and `--method`; only a missing option
        // warrants the usage dump.
        Some(other) => {
            return Err(CliError::run(format!(
                "--metric must be er|nmed, got `{other}`"
            )))
        }
        None => return Err(CliError::Usage("--metric is required".into())),
    };
    let bound = parse_bound(opts)?;
    let method = match opts.get("method").map(String::as_str) {
        None | Some("dcgwo") => Method::Dcgwo,
        Some("gwo") => Method::SingleChaseGwo,
        Some("hedals") => Method::Hedals,
        Some("greedy") => Method::VecbeeSasimi,
        Some("vaacs") => Method::Vaacs,
        Some(other) => return Err(CliError::run(format!("unknown method `{other}`"))),
    };
    let vectors = parse_num(opts, "vectors", 4096usize)?;
    let seed = parse_num(opts, "seed", 1u64)?;
    let threads = parse_threads(opts)?;
    let cfg = MethodConfig::default()
        .with_population(parse_num(opts, "population", 30usize)?)
        .with_iterations(parse_num(opts, "iterations", 20usize)?)
        .with_level_we(tdals::core::OptimizerConfig::paper_level_we(metric))
        .with_seed(seed)
        .with_threads(threads);

    let patterns = Patterns::random(accurate.input_count(), vectors, seed);
    let ctx = EvalContext::new(&accurate, patterns, metric, TimingConfig::default(), 0.8);
    let area_con = match opts.get("area-con") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| CliError::run("--area-con: invalid number"))?,
        ),
        None => None,
    };
    let progress = opts.contains_key("progress");

    eprintln!(
        "flow: {} gates, CPD_ori {:.2} ps, Area_ori {:.2} µm², method {}, {} worker{}",
        accurate.logic_gate_count(),
        ctx.cpd_ori(),
        ctx.area_ori(),
        method.label(),
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let result = Flow::for_context(&ctx)
        .error_bound(bound)
        .area_constraint(area_con)
        .optimizer(method.optimizer(&cfg))
        .observe(move |ev: &FlowEvent| {
            if progress {
                print_progress(ev);
            }
        })
        .run()
        .map_err(|e| CliError::run(e.to_string()))?;
    eprintln!(
        "done: Ratio_cpd {:.4}, CPD_fac {:.2} ps, error {:.5}, area {:.2} µm², {:.1}s ({})",
        result.ratio_cpd,
        result.cpd_fac,
        result.error,
        result.area,
        result.runtime_s,
        result.stop()
    );
    write_output(opts, &result.netlist)
}

/// Renders streaming flow events for `--progress` (stderr, so piped
/// Verilog output stays clean).
fn print_progress(ev: &FlowEvent) {
    match ev {
        FlowEvent::FlowStarted {
            optimizer,
            gates,
            cpd_ori,
            error_bound,
            ..
        } => eprintln!(
            "[{optimizer}] start: {gates} gates, CPD_ori {cpd_ori:.2} ps, bound {error_bound}"
        ),
        FlowEvent::IterationFinished { stats } => eprintln!(
            "  iter {:>3}: constraint {:.5}, best fitness {:.4}, depth {}, area {:.1}, {} feasible",
            stats.iteration,
            stats.constraint,
            stats.best_fitness,
            stats.best_depth,
            stats.best_area,
            stats.feasible
        ),
        FlowEvent::BestImproved {
            iteration,
            fitness,
            error,
            ..
        } => eprintln!("  iter {iteration:>3}: new best fitness {fitness:.4} (error {error:.5})"),
        FlowEvent::LacAccepted {
            iteration,
            error,
            area,
        } => eprintln!("  iter {iteration:>3}: LAC accepted (error {error:.5}, area {area:.1})"),
        FlowEvent::OptimizeFinished { stop, evaluations } => {
            eprintln!("optimizer {stop} after {evaluations} evaluations");
        }
        FlowEvent::PostOptFinished { report } => eprintln!(
            "post-opt: {} gates swept, {} sizing moves, CPD {:.2} -> {:.2} ps",
            report.gates_removed, report.sizing_moves, report.cpd_before, report.cpd_final
        ),
        _ => {}
    }
}

fn cmd_report(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let netlist = load_input(opts)?;
    let cfg = TimingConfig::default();
    let report = analyze(&netlist, &cfg);
    println!("module {}", netlist.name());
    println!("  gates : {}", netlist.logic_gate_count());
    println!("  PIs   : {}", netlist.input_count());
    println!("  POs   : {}", netlist.output_count());
    println!("  area  : {:.2} µm² (live)", netlist.area_live());
    println!("  depth : {} levels", report.max_depth());
    println!("  CPD   : {:.2} ps", report.critical_path_delay());
    let dead = netlist.live_mask().iter().filter(|&&l| !l).count();
    println!("  dangling gates: {dead}");
    let mut hist: Vec<(String, usize)> = netlist
        .func_histogram()
        .into_iter()
        .map(|(f, c)| (f.to_string(), c))
        .collect();
    hist.sort();
    println!(
        "  cell mix: {}",
        hist.iter()
            .map(|(f, c)| format!("{f}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let path = critical_path(&netlist, &report);
    println!("  critical path ({} gates):", path.len());
    for gate in path.iter().rev().take(12) {
        let g = netlist.gate(*gate);
        println!(
            "    {:>10.2} ps  {:<10} {}",
            report.arrival(*gate),
            g.cell().lib_name(),
            g.name()
        );
    }
    if path.len() > 12 {
        println!("    ... {} more", path.len() - 12);
    }
    Ok(())
}

fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let name = opts
        .get("name")
        .ok_or_else(|| CliError::Usage("--name is required".into()))?;
    let bench = benchmark_by_name(name)?;
    let netlist = bench.build();
    eprintln!(
        "{}: {} gates, {} PIs, {} POs — {}",
        bench.name(),
        netlist.logic_gate_count(),
        netlist.input_count(),
        netlist.output_count(),
        bench.description()
    );
    write_output(opts, &netlist)
}

fn cmd_list() -> Result<(), CliError> {
    println!("{:<12} {:<10} {:>7}  description", "name", "class", "#gate");
    for bench in ALL_BENCHMARKS {
        let n = bench.build();
        let class = match bench.class() {
            tdals::circuits::CircuitClass::RandomControl => "rand/ctrl",
            tdals::circuits::CircuitClass::Arithmetic => "arith",
        };
        println!(
            "{:<12} {:<10} {:>7}  {}",
            bench.name(),
            class,
            n.logic_gate_count(),
            bench.description()
        );
    }
    Ok(())
}

//! `tdals` — command-line front end for the timing-driven ALS flow.
//!
//! Subcommands:
//!
//! * `flow`   — approximate a structural-Verilog netlist (or a named
//!   benchmark) under an ER/NMED budget and write the result as Verilog;
//! * `report` — static timing + statistics report for a netlist;
//! * `bench`  — emit one of the paper's regenerated benchmarks as
//!   Verilog.
//!
//! ```sh
//! tdals bench --name Adder16 --output adder16.v
//! tdals flow --input adder16.v --metric nmed --bound 0.0244 --output approx.v
//! tdals report --input approx.v
//! ```

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

use tdals::baselines::{run_method, Method, MethodConfig};
use tdals::circuits::{Benchmark, ALL_BENCHMARKS};
use tdals::core::EvalContext;
use tdals::netlist::{verilog, Netlist};
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::{analyze, critical_path, TimingConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tdals flow   --input <file.v | bench:NAME> --metric <er|nmed> --bound <f>
               [--method <dcgwo|gwo|hedals|greedy|vaacs>] [--output <file.v>]
               [--population <n>] [--iterations <n>] [--vectors <n>]
               [--area-con <µm²>] [--seed <n>]
  tdals report --input <file.v | bench:NAME>
  tdals bench  --name <NAME> [--output <file.v>]
  tdals list";

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let opts = parse_options(rest)?;
    match command.as_str() {
        "flow" => cmd_flow(&opts),
        "report" => cmd_report(&opts),
        "bench" => cmd_bench(&opts),
        "list" => cmd_list(),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found `{key}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        opts.insert(name.to_owned(), value.clone());
    }
    Ok(opts)
}

fn load_input(opts: &HashMap<String, String>) -> Result<Netlist, String> {
    let input = opts
        .get("input")
        .ok_or_else(|| "--input is required".to_owned())?;
    if let Some(name) = input.strip_prefix("bench:") {
        return benchmark_by_name(name).map(Benchmark::build);
    }
    let text = fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
    verilog::parse(&text).map_err(|e| format!("parsing {input}: {e}"))
}

fn benchmark_by_name(name: &str) -> Result<Benchmark, String> {
    ALL_BENCHMARKS
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `tdals list`)"))
}

fn write_output(opts: &HashMap<String, String>, netlist: &Netlist) -> Result<(), String> {
    let text = verilog::to_verilog(netlist);
    match opts.get("output") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: invalid value `{v}`")),
        None => Ok(default),
    }
}

fn cmd_flow(opts: &HashMap<String, String>) -> Result<(), String> {
    let accurate = load_input(opts)?;
    let metric = match opts.get("metric").map(String::as_str) {
        Some("er") => ErrorMetric::ErrorRate,
        Some("nmed") => ErrorMetric::Nmed,
        Some(other) => return Err(format!("--metric must be er|nmed, got `{other}`")),
        None => return Err("--metric is required".into()),
    };
    let bound: f64 = opts
        .get("bound")
        .ok_or_else(|| "--bound is required".to_owned())?
        .parse()
        .map_err(|_| "--bound: invalid number".to_owned())?;
    let method = match opts.get("method").map(String::as_str) {
        None | Some("dcgwo") => Method::Dcgwo,
        Some("gwo") => Method::SingleChaseGwo,
        Some("hedals") => Method::Hedals,
        Some("greedy") => Method::VecbeeSasimi,
        Some("vaacs") => Method::Vaacs,
        Some(other) => return Err(format!("unknown method `{other}`")),
    };
    let vectors = parse_num(opts, "vectors", 4096usize)?;
    let seed = parse_num(opts, "seed", 1u64)?;
    let cfg = MethodConfig {
        population: parse_num(opts, "population", 30usize)?,
        iterations: parse_num(opts, "iterations", 20usize)?,
        level_we: match metric {
            ErrorMetric::ErrorRate => 0.1,
            ErrorMetric::Nmed => 0.2,
        },
        seed,
    };

    let patterns = Patterns::random(accurate.input_count(), vectors, seed);
    let ctx = EvalContext::new(&accurate, patterns, metric, TimingConfig::default(), 0.8);
    let area_con = match opts.get("area-con") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| "--area-con: invalid number".to_owned())?,
        ),
        None => None,
    };

    eprintln!(
        "flow: {} gates, CPD_ori {:.2} ps, Area_ori {:.2} µm², method {}",
        accurate.logic_gate_count(),
        ctx.cpd_ori(),
        ctx.area_ori(),
        method.label()
    );
    let result = run_method(&ctx, method, bound, area_con, &cfg);
    eprintln!(
        "done: Ratio_cpd {:.4}, CPD_fac {:.2} ps, error {:.5}, area {:.2} µm², {:.1}s",
        result.ratio_cpd, result.cpd_fac, result.error, result.area, result.runtime_s
    );
    write_output(opts, &result.netlist)
}

fn cmd_report(opts: &HashMap<String, String>) -> Result<(), String> {
    let netlist = load_input(opts)?;
    let cfg = TimingConfig::default();
    let report = analyze(&netlist, &cfg);
    println!("module {}", netlist.name());
    println!("  gates : {}", netlist.logic_gate_count());
    println!("  PIs   : {}", netlist.input_count());
    println!("  POs   : {}", netlist.output_count());
    println!("  area  : {:.2} µm² (live)", netlist.area_live());
    println!("  depth : {} levels", report.max_depth());
    println!("  CPD   : {:.2} ps", report.critical_path_delay());
    let dead = netlist.live_mask().iter().filter(|&&l| !l).count();
    println!("  dangling gates: {dead}");
    let mut hist: Vec<(String, usize)> = netlist
        .func_histogram()
        .into_iter()
        .map(|(f, c)| (f.to_string(), c))
        .collect();
    hist.sort();
    println!(
        "  cell mix: {}",
        hist.iter()
            .map(|(f, c)| format!("{f}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let path = critical_path(&netlist, &report);
    println!("  critical path ({} gates):", path.len());
    for gate in path.iter().rev().take(12) {
        let g = netlist.gate(*gate);
        println!(
            "    {:>10.2} ps  {:<10} {}",
            report.arrival(*gate),
            g.cell().lib_name(),
            g.name()
        );
    }
    if path.len() > 12 {
        println!("    ... {} more", path.len() - 12);
    }
    Ok(())
}

fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    let name = opts
        .get("name")
        .ok_or_else(|| "--name is required".to_owned())?;
    let bench = benchmark_by_name(name)?;
    let netlist = bench.build();
    eprintln!(
        "{}: {} gates, {} PIs, {} POs — {}",
        bench.name(),
        netlist.logic_gate_count(),
        netlist.input_count(),
        netlist.output_count(),
        bench.description()
    );
    write_output(opts, &netlist)
}

fn cmd_list() -> Result<(), String> {
    println!("{:<12} {:<10} {:>7}  description", "name", "class", "#gate");
    for bench in ALL_BENCHMARKS {
        let n = bench.build();
        let class = match bench.class() {
            tdals::circuits::CircuitClass::RandomControl => "rand/ctrl",
            tdals::circuits::CircuitClass::Arithmetic => "arith",
        };
        println!(
            "{:<12} {:<10} {:>7}  {}",
            bench.name(),
            class,
            n.logic_gate_count(),
            bench.description()
        );
    }
    Ok(())
}

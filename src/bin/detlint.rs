//! `detlint` — source-level determinism lint for the tdals workspace.
//!
//! The whole repository promises bit-identical results for one seed,
//! whatever the thread count or host. Three source patterns can quietly
//! break that promise:
//!
//! 1. **Hash-order iteration** — walking a `HashMap`/`HashSet` and
//!    letting the visit order reach anything serialized or compared
//!    (digests, result files, candidate ranking);
//! 2. **Wall-clock reads** — `Instant::now()` / `SystemTime::now()`
//!    values flowing into serialized outcomes;
//! 3. **Ambient RNG construction** — randomness not derived from the
//!    session seed via `split_seed` (`thread_rng`, `from_entropy`,
//!    `OsRng`);
//! 4. **Wall-clock types outside the facade** — any `std::time::Instant`
//!    / `SystemTime` mention outside `tdals_obs::clock` (the one audited
//!    clock facade) and the benchmark binaries, which measure wall-clock
//!    by design.
//!
//! The scan is textual and deliberately over-approximate: every hit is
//! either removed or *audited* — recorded in the allowlist file
//! (`detlint.allow` by default) with a reason. Allowlist lines have the
//! form `path-suffix :: line-substring :: reason`; `#` starts a
//! comment. A violation is any finding without an allowlist entry; a
//! stale entry (matching nothing) is also an error so the audit file
//! cannot rot.
//!
//! ```sh
//! detlint                       # scan src/, crates/, tests/ from .
//! detlint --root /path/to/repo --allowlist detlint.allow
//! ```
//!
//! The tool reads only workspace sources (`vendor/` and `target/` are
//! skipped, as is this file itself — it names the patterns it hunts).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One determinism-relevant source site.
struct Finding {
    path: String,
    line: usize,
    kind: &'static str,
    excerpt: String,
}

/// One audited exemption: `path-suffix :: line-substring :: reason`.
struct Allow {
    path_suffix: String,
    needle: String,
    reason: String,
    used: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut allowlist_path = PathBuf::from("detlint.allow");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a value"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist_path = PathBuf::from(v),
                None => return usage("--allowlist requires a value"),
            },
            other => return usage(&format!("unknown option `{other}`")),
        }
    }

    let mut files = Vec::new();
    for dir in ["src", "crates", "tests"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        // The linter names the patterns it hunts; scanning itself would
        // flag its own definitions.
        if path.ends_with("src/bin/detlint.rs") {
            continue;
        }
        let Ok(text) = fs::read_to_string(path) else {
            eprintln!("detlint: unreadable file {}", path.display());
            return ExitCode::FAILURE;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned();
        scan_file(&rel, &text, &mut findings);
    }

    let allowlist_file = root.join(&allowlist_path);
    let mut allows = match fs::read_to_string(&allowlist_file) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };

    let mut violations = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        let entry = allows
            .iter_mut()
            .find(|a| f.path.ends_with(&a.path_suffix) && f.excerpt.contains(&a.needle));
        match entry {
            Some(a) => {
                a.used = true;
                allowed += 1;
            }
            None => {
                violations += 1;
                eprintln!(
                    "detlint: {}:{}: [{}] {}",
                    f.path,
                    f.line,
                    f.kind,
                    f.excerpt.trim()
                );
            }
        }
    }
    let mut stale = 0usize;
    for a in &allows {
        if !a.used {
            stale += 1;
            eprintln!(
                "detlint: stale allowlist entry `{} :: {}` ({}): matches nothing",
                a.path_suffix, a.needle, a.reason
            );
        }
    }
    eprintln!(
        "detlint: {} file(s), {} finding(s): {} allowed, {} violation(s), {} stale entr(ies)",
        files.len(),
        findings.len(),
        allowed,
        violations,
        stale
    );
    if violations > 0 || stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("detlint: {message}");
    eprintln!("usage: detlint [--root <dir>] [--allowlist <file>]");
    ExitCode::FAILURE
}

/// Recursively collects `.rs` files, skipping `vendor/` and `target/`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn parse_allowlist(text: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The separator requires surrounding spaces so path-qualified
        // needles like `Instant::now` survive the split.
        let mut parts = line.splitn(3, " :: ").map(str::trim);
        let (Some(path_suffix), Some(needle), Some(reason)) =
            (parts.next(), parts.next(), parts.next())
        else {
            eprintln!(
                "detlint: malformed allowlist line (want `path :: substring :: reason`): {line}"
            );
            continue;
        };
        allows.push(Allow {
            path_suffix: path_suffix.to_owned(),
            needle: needle.to_owned(),
            reason: reason.to_owned(),
            used: false,
        });
    }
    allows
}

/// Adds every determinism-relevant site of one file to `findings`.
fn scan_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    // Pass 1: names bound to hash collections in this file — `let`
    // bindings, struct fields, and functions returning one.
    let mut hash_names: Vec<String> = Vec::new();
    let mut hash_fns: Vec<String> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("//") || !(t.contains("HashMap") || t.contains("HashSet")) {
            continue;
        }
        if let Some(name) = let_binding_name(t) {
            hash_names.push(name);
        } else if let Some(name) = fn_name(t) {
            // Only functions *returning* a hash collection; parameters
            // of hash type do not make the function's result unordered.
            if t.split("->")
                .nth(1)
                .is_some_and(|ret| ret.contains("HashMap") || ret.contains("HashSet"))
            {
                hash_fns.push(name);
            }
        } else if let Some(name) = field_name(t) {
            hash_names.push(name);
        }
    }
    hash_names.sort();
    hash_names.dedup();

    // Wall-clock *types* are confined to the obs clock facade (and the
    // benchmark binaries, which measure wall-clock by design); any other
    // `std::time::Instant` / `SystemTime` mention is a site the facade
    // should own. Structural carve-out rather than allowlist entries:
    // the exemption is about *where* the type lives, not one line.
    let clock_type_exempt =
        rel.ends_with("crates/obs/src/clock.rs") || rel.contains("crates/bench/src/bin/");

    // Pass 2: per-line pattern checks.
    let iter_suffixes = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
        ".retain(",
    ];
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        let push = |findings: &mut Vec<Finding>, kind| {
            findings.push(Finding {
                path: rel.to_owned(),
                line: lineno,
                kind,
                excerpt: t.to_owned(),
            });
        };
        if t.contains("Instant::now(") || t.contains("SystemTime::now(") {
            push(findings, "wall-clock");
        }
        if !clock_type_exempt
            && t.contains("std::time::")
            && (t.contains("Instant") || t.contains("SystemTime"))
        {
            push(findings, "wall-clock-type");
        }
        if t.contains("thread_rng(") || t.contains("from_entropy(") || t.contains("OsRng") {
            push(findings, "ambient-rng");
        }
        let mut hash_iter = false;
        for name in &hash_names {
            for suffix in &iter_suffixes {
                if contains_token_then(t, name, suffix) {
                    hash_iter = true;
                }
            }
            if t.contains("for ")
                && (contains_token_then(t, &format!("in &{name}"), "")
                    || contains_token_then(t, &format!("in &mut {name}"), "")
                    || contains_token_then(t, &format!("in {name}"), ""))
            {
                hash_iter = true;
            }
        }
        for fname in &hash_fns {
            for suffix in &iter_suffixes {
                if t.contains(&format!("{fname}(){suffix}"))
                    || t.contains(&format!("{fname}(&"))
                        && iter_suffixes.iter().any(|s| t.contains(s))
                {
                    hash_iter = true;
                }
            }
        }
        if hash_iter {
            push(findings, "hash-iteration");
        }
    }
}

/// `needle` followed by `suffix`, with no identifier character right
/// before `needle` (so tracking `dec` never fires inside `decode`).
fn contains_token_then(line: &str, needle: &str, suffix: &str) -> bool {
    let pattern = format!("{needle}{suffix}");
    let mut from = 0usize;
    while let Some(pos) = line[from..].find(&pattern) {
        let at = from + pos;
        let boundary = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + 1;
    }
    false
}

/// The bound identifier of a `let` / `let mut` statement.
fn let_binding_name(t: &str) -> Option<String> {
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    take_ident(rest)
}

/// The name of a `fn` declared on this line.
fn fn_name(t: &str) -> Option<String> {
    let at = t.find("fn ")?;
    // Reject e.g. `often ` — require a word boundary before `fn`.
    if at > 0
        && t[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    take_ident(&t[at + 3..])
}

/// The field name of a `name: HashMap<..>` struct-field line.
fn field_name(t: &str) -> Option<String> {
    if t.contains("fn ") || t.starts_with("let ") {
        return None;
    }
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let colon = t.find(':')?;
    let name = take_ident(t)?;
    // The identifier must run right up to the colon (`name: T`), not be
    // part of an expression or a path.
    if t[name.len()..colon].trim().is_empty() && !t[colon..].starts_with("::") {
        Some(name)
    } else {
        None
    }
}

/// Leading identifier of `s`, if any.
fn take_ident(s: &str) -> Option<String> {
    let end = s
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    let ident = &s[..end];
    if ident
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        Some(ident.to_owned())
    } else {
        None
    }
}

//! Error-budget exploration on an arithmetic workload: sweep the NMED
//! constraint on the 16-bit adder and print the resulting
//! accuracy/timing trade-off curve, then dump the loosest-budget
//! netlist as structural Verilog.
//!
//! This mirrors the motivation in the paper's introduction: error-
//! tolerant applications trade a controlled amount of arithmetic
//! precision for critical-path delay.
//!
//! ```sh
//! cargo run --release --example error_budget_sweep
//! ```

use tdals::circuits::Benchmark;
use tdals::core::api::{Dcgwo, Flow};
use tdals::netlist::verilog;
use tdals::sim::ErrorMetric;

fn main() {
    let accurate = Benchmark::Adder16.build();
    println!(
        "circuit: {} ({} gates)",
        accurate.name(),
        accurate.logic_gate_count()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "NMED_con", "NMED", "Ratio_cpd", "area µm²"
    );

    let budgets = [0.0048, 0.0098, 0.0147, 0.0196, 0.0244];
    let mut last = None;
    for &budget in &budgets {
        let result = Flow::for_netlist(&accurate)
            .metric(ErrorMetric::Nmed)
            .error_bound(budget)
            .vectors(2048)
            .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(12, 10))
            .run()
            .expect("valid flow configuration");
        println!(
            "{:>10.4} {:>10.5} {:>10.4} {:>10.2}",
            budget, result.error, result.ratio_cpd, result.area
        );
        last = Some(result);
    }

    if let Some(result) = last {
        let text = verilog::to_verilog(&result.netlist);
        let lines = text.lines().count();
        println!("\nfinal approximate netlist ({lines} lines of Verilog), first 10 lines:");
        for line in text.lines().take(10) {
            println!("  {line}");
        }
    }
}

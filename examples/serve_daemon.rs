//! The serving daemon, in-process: a `tdals serve`-style [`Daemon`] on
//! an ephemeral TCP port, a client speaking the versioned frame
//! protocol over a real socket — submit, stream events, fetch the
//! result, check health, shut down.
//!
//! ```sh
//! cargo run --release --example serve_daemon
//! ```

use tdals::circuits::Benchmark;
use tdals::server::{
    as_error, connect, Connection, Daemon, DaemonConfig, FlowJob, Listener, Request,
};
use tdals_bench::json::Json;

fn call(conn: &mut Connection<tdals::server::Stream>, request: &Request) -> Json {
    conn.send(&request.to_json()).expect("send frame");
    let reply = conn.receive().expect("read frame").expect("daemon replied");
    if let Some((code, message)) = as_error(&reply) {
        panic!("daemon error {code}: {message}");
    }
    reply
}

fn main() {
    // A daemon over two worker slots, with a per-tenant quota of one
    // live session — the same admission control `tdals serve` runs.
    let daemon = Daemon::new(DaemonConfig::new(2).with_tenant_quota(1)).expect("non-zero budget");
    let listener = Listener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let spec = listener.local_spec();
    println!("daemon listening on {spec}");
    let server = std::thread::spawn(move || daemon.serve(listener).expect("serve loop"));

    // The client half: every frame here is exactly what
    // `tdals submit --connect {spec}` would send.
    let mut conn = Connection::new(connect(&spec).expect("dial the daemon"));

    let job = FlowJob::benchmark(Benchmark::Int2float)
        .with_bound(0.05)
        .with_scale(8, 6)
        .with_vectors(1024)
        .with_seed(11);
    let reply = call(
        &mut conn,
        &Request::Submit {
            job,
            tenant: Some("acme".into()),
        },
    );
    let session = reply.get("session").and_then(Json::as_f64).expect("id") as u64;
    println!("submitted session {session}");

    // Block for the result, then drain the event stream the session
    // buffered along the way (each event is delivered exactly once).
    let result = call(
        &mut conn,
        &Request::Result {
            session,
            wait: true,
        },
    );
    println!(
        "result: status {}, record {}",
        result.get("status").and_then(Json::as_str).unwrap_or("?"),
        result.get("record").expect("record").compact()
    );
    let events = call(&mut conn, &Request::Events { session });
    if let Some(Json::Arr(frames)) = events.get("events") {
        println!("{} buffered event frame(s), e.g.:", frames.len());
        for frame in frames.iter().take(3) {
            println!("  {}", frame.compact());
        }
    }

    let health = call(&mut conn, &Request::Health);
    println!("health: {}", health.compact());

    // Graceful exit: drain + stop, then join the serve loop.
    call(&mut conn, &Request::Shutdown);
    drop(conn);
    server.join().expect("daemon thread");
    println!("daemon shut down");
}

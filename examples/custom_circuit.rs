//! Bring your own netlist: build a custom datapath with the netlist
//! builder (or parse it from structural Verilog), approximate it
//! through the session API with a wall-clock budget and cooperative
//! cancellation wired up, and inspect the optimizer's trajectory.
//!
//! The workload is a small multiply-accumulate unit — the kind of
//! error-tolerant DSP kernel approximate computing targets.
//!
//! ```sh
//! cargo run --release --example custom_circuit
//! ```

use std::time::Duration;

use tdals::circuits::arith::array_multiplier;
use tdals::core::api::{Budget, Dcgwo, Flow};
use tdals::netlist::builder::Builder;
use tdals::netlist::{verilog, SignalRef};
use tdals::sim::ErrorMetric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y = a*b + c over 6-bit operands.
    let mut b = Builder::new("mac6");
    let a = b.inputs("a", 6);
    let x = b.inputs("b", 6);
    let c = b.inputs("c", 12);
    let product = array_multiplier(&mut b, &a, &x);
    let (sum, carry) = b.ripple_add(&product, &c, SignalRef::Const0);
    b.outputs("y", &sum);
    b.output("cout", carry);
    let mac = b.finish();

    // Round-trip through Verilog to show the I/O path a real flow
    // uses; the stats below come from the *parsed* netlist, so a lossy
    // round-trip would show up here. (Flow::for_verilog does the parse
    // and session in one step, surfacing parse problems as typed
    // FlowErrors.)
    let text = verilog::to_verilog(&mac);
    let mac = verilog::parse(&text)?;
    println!(
        "parsed {}: {} gates, {} PIs, {} POs",
        mac.name(),
        mac.logic_gate_count(),
        mac.input_count(),
        mac.output_count()
    );
    let flow = Flow::for_netlist(&mac);

    // A deadline-bounded run with a cancel handle: the optimizer stops
    // within one iteration of either trigger and still returns its best
    // feasible circuit. (The handle is unused here, but this is how a
    // serving layer would wire up request cancellation.)
    let budget = Budget::unlimited().with_deadline(Duration::from_secs(120));
    let _cancel_handle = budget.cancel_flag();

    let result = flow
        .metric(ErrorMetric::Nmed)
        .error_bound(0.02)
        .vectors(2048)
        .budget(budget)
        .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(12, 10))
        .run()?;

    println!("\niter  constraint  best_fitness  depth  area");
    for h in result.history() {
        println!(
            "{:>4}  {:>10.5}  {:>12.4}  {:>5}  {:>6.1}",
            h.iteration, h.constraint, h.best_fitness, h.best_depth, h.best_area
        );
    }
    println!(
        "\nRatio_cpd = {:.4}, NMED = {:.5}, stopped: {}, runtime = {:.2}s",
        result.ratio_cpd,
        result.error,
        result.stop(),
        result.runtime_s
    );
    Ok(())
}

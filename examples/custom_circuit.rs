//! Bring your own netlist: build a custom datapath with the netlist
//! builder (or parse it from structural Verilog), approximate it, and
//! inspect the optimizer's population trajectory.
//!
//! The workload is a small multiply-accumulate unit — the kind of
//! error-tolerant DSP kernel approximate computing targets.
//!
//! ```sh
//! cargo run --release --example custom_circuit
//! ```

use tdals::circuits::arith::array_multiplier;
use tdals::core::{run_flow, FlowConfig};
use tdals::netlist::builder::Builder;
use tdals::netlist::{verilog, SignalRef};
use tdals::sim::ErrorMetric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y = a*b + c over 6-bit operands.
    let mut b = Builder::new("mac6");
    let a = b.inputs("a", 6);
    let x = b.inputs("b", 6);
    let c = b.inputs("c", 12);
    let product = array_multiplier(&mut b, &a, &x);
    let (sum, carry) = b.ripple_add(&product, &c, SignalRef::Const0);
    b.outputs("y", &sum);
    b.output("cout", carry);
    let mac = b.finish();

    // Round-trip through Verilog to show the I/O path a real flow uses.
    let text = verilog::to_verilog(&mac);
    let mac = verilog::parse(&text)?;
    println!(
        "parsed {}: {} gates, {} PIs, {} POs",
        mac.name(),
        mac.logic_gate_count(),
        mac.input_count(),
        mac.output_count()
    );

    let mut cfg = FlowConfig::paper_defaults(ErrorMetric::Nmed, 0.02);
    cfg.vectors = 2048;
    cfg.optimizer.population = 12;
    cfg.optimizer.iterations = 10;
    let result = run_flow(&mac, &cfg);

    println!("\niter  constraint  best_fitness  depth  area");
    for h in &result.optimizer.history {
        println!(
            "{:>4}  {:>10.5}  {:>12.4}  {:>5}  {:>6.1}",
            h.iteration, h.constraint, h.best_fitness, h.best_depth, h.best_area
        );
    }
    println!(
        "\nRatio_cpd = {:.4}, NMED = {:.5}, runtime = {:.2}s",
        result.ratio_cpd, result.error, result.runtime_s
    );
    Ok(())
}

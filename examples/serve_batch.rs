//! Serving concurrent flows: three tenants share one scheduler and a
//! two-slot worker pool — one is cancelled mid-flight, the others run
//! to completion, and every outcome is bit-identical to a solo run.
//!
//! ```sh
//! cargo run --release --example serve_batch
//! ```

use tdals::baselines::Method;
use tdals::circuits::Benchmark;
use tdals::core::api::FlowEvent;
use tdals::server::{FlowJob, JobBudget, Manifest, Scheduler, SchedulerConfig};

fn main() {
    // A scheduler with a 2-slot budget: at most two sessions hold
    // worker threads at once; the rest queue (priority first, FIFO
    // within a priority).
    let scheduler = Scheduler::new(SchedulerConfig::new(2)).expect("non-zero budget");

    let jobs = vec![
        FlowJob::benchmark(Benchmark::Int2float)
            .with_method(Method::Dcgwo)
            .with_bound(0.05)
            .with_scale(8, 6)
            .with_vectors(1024)
            .with_seed(11),
        FlowJob::benchmark(Benchmark::Max16)
            .with_method(Method::Hedals)
            .with_metric(tdals::sim::ErrorMetric::Nmed)
            .with_bound(0.0244)
            .with_scale(8, 2)
            .with_vectors(1024)
            .with_seed(7)
            .with_priority(5),
        // The tenant we will cancel: a long run that would otherwise
        // hold its slot for a while.
        FlowJob::benchmark(Benchmark::Int2float)
            .with_method(Method::Dcgwo)
            .with_bound(0.05)
            .with_scale(6, 500)
            .with_vectors(512)
            .with_seed(3)
            .with_budget(JobBudget::default()),
    ];

    // Jobs serialize: this is exactly the `tdals serve-batch` manifest.
    println!("manifest:\n{}\n", Manifest::new(jobs.clone()).to_json());

    let handles: Vec<_> = jobs
        .iter()
        .map(|job| scheduler.submit(job.clone()).expect("admitted"))
        .collect();

    // Cancel the long tenant once it has run at least one iteration.
    let victim = &handles[2];
    loop {
        let ran_an_iteration = victim
            .poll_events()
            .iter()
            .any(|ev| matches!(ev, FlowEvent::IterationFinished { .. }));
        if ran_an_iteration {
            victim.cancel();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    scheduler.drain();
    for (job, handle) in jobs.iter().zip(&handles) {
        let outcome = handle.result().expect("every session reports a best");
        println!(
            "{:<10} {:<8} admitted #{} -> {:<9} Ratio_cpd {:.4}, error {:.5}, {} iterations",
            job.name,
            job.method.cli_name(),
            handle.admission_index().expect("all ran"),
            outcome.stop().to_string(),
            outcome.ratio_cpd,
            outcome.error,
            outcome.optimize.history.len(),
        );
    }

    // Co-tenancy never changes results: the first tenant's netlist is
    // gate-for-gate what a solo run produces.
    let solo = jobs[0].run_direct(1).expect("valid job");
    let scheduled = handles[0].result().expect("completed");
    assert_eq!(solo.netlist, scheduled.netlist);
    println!("\nscheduled run is bit-identical to the solo run ✓");
}

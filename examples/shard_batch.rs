//! Sharded batch execution with the cluster coordinator: plan a
//! manifest across shards, run each shard's sub-manifest through the
//! worker engine, and merge the per-shard results back into a document
//! **byte-identical** to the single-process run.
//!
//! This is the library face of `tdals shard-batch`. The CLI's mode A
//! spawns one `tdals serve-batch` child process per shard; here each
//! shard runs in-process through the very same [`BatchRun`] engine
//! those children execute, so the example needs no spawned binaries
//! and still demonstrates the whole plan → run → merge contract,
//! byte-for-byte.
//!
//! ```sh
//! cargo run --release --example shard_batch
//! ```

use tdals::circuits::Benchmark;
use tdals::cluster::{merge, plan, ShardPolicy};
use tdals::server::{BatchOptions, BatchRun, FlowJob, Manifest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little batch: the same benchmark under different optimizers
    // and seeds. Names must be unique — result records are keyed by
    // them downstream.
    let jobs: Vec<FlowJob> = [3u64, 5, 7, 11, 13]
        .iter()
        .map(|&seed| {
            FlowJob::benchmark(Benchmark::Int2float)
                .with_bound(0.05)
                .with_scale(6, 2)
                .with_vectors(512)
                .with_seed(seed)
                .with_name(format!("int2float-{seed}"))
        })
        .collect();
    let manifest = Manifest::new(jobs);

    // Plan 3 shards. The plan is a pure function of the manifest and
    // policy, so coordinator and post-mortem always agree on it; the
    // JSON shard map is what `tdals shard-batch --shard-map` records.
    let shard_plan = plan(&manifest, 3, ShardPolicy::SizeWeighted)?;
    println!("shard map:\n{}\n", shard_plan.to_json());

    // Run each shard the way a worker process would. The per-shard
    // thread pool width is irrelevant to the bytes produced — results
    // are width-invariant — so use whatever this machine has.
    let opts = BatchOptions::new();
    let mut shard_docs = Vec::with_capacity(shard_plan.shard_count());
    for shard in 0..shard_plan.shard_count() {
        let sub = shard_plan.manifest_for(&manifest, shard);
        let run = BatchRun::prepare(&sub, &opts)?;
        let report = run.run(&mut |_, _, _| {})?;
        println!(
            "shard {shard}: {} job(s), {} completed",
            sub.jobs.len(),
            report.completed
        );
        shard_docs.push(format!("{}\n", report.document()));
    }

    // Merge validates each shard's record count and local indices
    // before stitching the global order back together.
    let merged = merge(&shard_plan, &shard_docs)?;

    // The acceptance criterion, live: the merged document is the exact
    // bytes the unsharded run writes.
    let solo = BatchRun::prepare(&manifest, &opts)?;
    let solo_doc = format!("{}\n", solo.run(&mut |_, _, _| {})?.document());
    assert_eq!(merged, solo_doc, "sharded and solo runs must agree");
    println!("\nmerged == solo: {} bytes, byte-identical", merged.len());
    Ok(())
}

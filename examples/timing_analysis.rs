//! Timing-analysis tooling tour: full STA, a PrimeTime-style report,
//! incremental what-if analysis of a LAC, and a Liberty export of the
//! cell library.
//!
//! ```sh
//! cargo run --release --example timing_analysis
//! ```

use tdals::circuits::Benchmark;
use tdals::netlist::{liberty, SignalRef};
use tdals::sta::{
    analyze, critical_path, timing_report_text, IncrementalSta, ReportOptions, TimingConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut netlist = Benchmark::C880.build();
    let cfg = TimingConfig::default();

    // Full analysis + report.
    let report = analyze(&netlist, &cfg);
    println!(
        "{}",
        timing_report_text(
            &netlist,
            &report,
            &ReportOptions {
                path_count: 2,
                max_gates_per_path: 8,
            }
        )
    );

    // What-if: substitute the midpoint of the critical path with
    // constant 0 and watch the incremental engine track the change.
    let path = critical_path(&netlist, &report);
    let target = path[path.len() / 2];
    println!(
        "what-if: substitute critical-path gate `{}` with 1'b0",
        netlist.gate(target).name()
    );
    let mut engine = IncrementalSta::new(&netlist, cfg);
    let before = engine.critical_path_delay(&netlist);
    engine.substitute(&mut netlist, target, SignalRef::Const0)?;
    let after = engine.critical_path_delay(&netlist);
    println!("  CPD {before:.2} ps -> {after:.2} ps (incremental update)");

    // Cross-check against a from-scratch run.
    let full = analyze(&netlist, &cfg);
    println!(
        "  from-scratch STA agrees: {:.2} ps",
        full.critical_path_delay()
    );

    // Library export.
    let lib = liberty::to_liberty("tdals28");
    let (name, cells) = liberty::parse_liberty(&lib)?;
    println!(
        "\nliberty export: library `{name}` with {} cells",
        cells.len()
    );
    for cell in cells.iter().take(3) {
        println!(
            "  {:<10} area {:>6.2} um2, cin {:>5.2} fF, R {:>5.2} ps/fF",
            cell.name, cell.area, cell.input_cap, cell.resistance
        );
    }
    Ok(())
}

//! Quick start: approximate one benchmark circuit and report the
//! timing gain.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tdals::circuits::Benchmark;
use tdals::core::{run_flow, FlowConfig};
use tdals::sim::ErrorMetric;

fn main() {
    // The paper's arithmetic protocol: NMED budget of 2.44%.
    let accurate = Benchmark::Max16.build();
    println!(
        "accurate circuit: {} ({} gates, {} PIs, {} POs)",
        accurate.name(),
        accurate.logic_gate_count(),
        accurate.input_count(),
        accurate.output_count()
    );

    let mut cfg = FlowConfig::paper_defaults(ErrorMetric::Nmed, 0.0244);
    // Laptop-friendly effort; bump these toward (30, 20) for paper-scale
    // runs.
    cfg.vectors = 2048;
    cfg.optimizer.population = 12;
    cfg.optimizer.iterations = 10;

    let result = run_flow(&accurate, &cfg);

    println!("CPD_ori   = {:8.2} ps", result.cpd_ori);
    println!("CPD_fac   = {:8.2} ps", result.cpd_fac);
    println!(
        "Ratio_cpd = {:8.4}  ({:.1}% critical-path delay reduction)",
        result.ratio_cpd,
        (1.0 - result.ratio_cpd) * 100.0
    );
    println!("NMED      = {:8.5} (budget 0.0244)", result.error);
    println!(
        "area      = {:8.2} µm² (constraint {:.2} µm²)",
        result.area, result.area_con
    );
    println!(
        "post-opt  = {} dangling gates removed, {} sizing moves",
        result.post_opt.gates_removed, result.post_opt.sizing_moves
    );
    println!("runtime   = {:8.2} s", result.runtime_s);
}

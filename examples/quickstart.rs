//! Quick start: approximate one benchmark circuit through the session
//! API and report the timing gain, streaming progress while it runs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tdals::circuits::Benchmark;
use tdals::core::api::{Dcgwo, Flow, FlowEvent};
use tdals::sim::ErrorMetric;

fn main() {
    // The paper's arithmetic protocol: NMED budget of 2.44%.
    let accurate = Benchmark::Max16.build();
    println!(
        "accurate circuit: {} ({} gates, {} PIs, {} POs)",
        accurate.name(),
        accurate.logic_gate_count(),
        accurate.input_count(),
        accurate.output_count()
    );

    let result = Flow::for_netlist(&accurate)
        .metric(ErrorMetric::Nmed)
        .error_bound(0.0244)
        // Laptop-friendly effort; bump toward (30, 20) for paper-scale
        // runs.
        .vectors(2048)
        .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(12, 10))
        .observe(|ev: &FlowEvent| {
            if let FlowEvent::IterationFinished { stats } = ev {
                println!(
                    "  iter {:>2}: constraint {:.5}, best fitness {:.4}, depth {}, area {:.1}",
                    stats.iteration,
                    stats.constraint,
                    stats.best_fitness,
                    stats.best_depth,
                    stats.best_area
                );
            }
        })
        .run()
        .expect("valid flow configuration");

    println!("CPD_ori   = {:8.2} ps", result.cpd_ori);
    println!("CPD_fac   = {:8.2} ps", result.cpd_fac);
    println!(
        "Ratio_cpd = {:8.4}  ({:.1}% critical-path delay reduction)",
        result.ratio_cpd,
        (1.0 - result.ratio_cpd) * 100.0
    );
    println!("NMED      = {:8.5} (budget 0.0244)", result.error);
    println!(
        "area      = {:8.2} µm² (constraint {:.2} µm²)",
        result.area, result.area_con
    );
    println!(
        "post-opt  = {} dangling gates removed, {} sizing moves",
        result.post_opt.gates_removed, result.post_opt.sizing_moves
    );
    println!(
        "stopped   = {} after {} evaluations",
        result.stop(),
        result.optimize.evaluations
    );
    println!("runtime   = {:8.2} s", result.runtime_s);
}

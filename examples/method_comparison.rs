//! Method shoot-out on a random/control workload: run all five flows
//! (VECBEE-S, VaACS, HEDALS, single-chase GWO, DCGWO) on the c880-class
//! 8-bit ALU under a 5% error-rate budget — a single row of the paper's
//! TABLE II — every one through the same `Optimizer` trait and `Flow`
//! session.
//!
//! ```sh
//! cargo run --release --example method_comparison
//! ```

use tdals::baselines::{MethodConfig, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::api::Flow;
use tdals::core::EvalContext;
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::TimingConfig;

fn main() {
    let accurate = Benchmark::C880.build();
    let patterns = Patterns::random(accurate.input_count(), 2048, 0xC880);
    let ctx = EvalContext::new(
        &accurate,
        patterns,
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    );
    println!(
        "circuit: {} ({} gates, CPD_ori {:.1} ps, Area_ori {:.1} µm²)",
        accurate.name(),
        accurate.logic_gate_count(),
        ctx.cpd_ori(),
        ctx.area_ori()
    );
    println!("error-rate budget: 5%\n");
    println!(
        "{:<10} {:>10} {:>9} {:>11} {:>11}",
        "method", "Ratio_cpd", "ER", "area µm²", "runtime s"
    );

    let cfg = MethodConfig::default()
        .with_population(12)
        .with_iterations(10)
        .with_level_we(0.1)
        .with_seed(7);
    for method in ALL_METHODS {
        let result = Flow::for_context(&ctx)
            .error_bound(0.05)
            .optimizer(method.optimizer(&cfg))
            .run()
            .expect("valid flow configuration");
        println!(
            "{:<10} {:>10.4} {:>9.4} {:>11.2} {:>11.2}",
            method.label(),
            result.ratio_cpd,
            result.error,
            result.area,
            result.runtime_s
        );
    }
}
